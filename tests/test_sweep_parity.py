"""Differential tests: parallel sweeps are bit-identical to serial.

The sweep orchestrator's whole contract is that ``--jobs N`` is an
implementation detail: for representative drivers (fig09, table5) the
output list, its canonical JSON serialisation, the telemetry counter
totals, and the stamped BENCH manifests (modulo host/timestamp fields)
must all match a serial run exactly.
"""

import dataclasses
import json

import pytest

from repro.bench import fig09, table5

# Full-grid differential runs take tens of seconds; the quick coverage
# lane (-m "not slow") skips them, tier-1 still runs everything.
pytestmark = pytest.mark.slow
from repro.bench.harness import BenchEnvironment, write_bench_json
from repro.config import TelemetryConfig
from repro.sweep import SweepRunner, open_cache
from repro.telemetry import Telemetry
from repro.telemetry.provenance import diff_manifests

TINY_ENV = BenchEnvironment(
    scale="tiny", num_pes=2, opt_mode="quick",
    cache_shrink=8.0, row_panel_divisor=8,
)
MATRICES = ["KRO", "DEL", "MYC"]

# Manifest fields expected to differ between two runs on principle
# (wall-clock and host identity); everything else must be identical.
VOLATILE_MANIFEST_PREFIXES = ("manifest.created_utc", "manifest.host")


def canonical_json(rows) -> str:
    """The byte-level serialisation the BENCH files are derived from."""
    return json.dumps(
        [dataclasses.asdict(r) for r in rows],
        sort_keys=True,
        default=repr,
        separators=(",", ":"),
    )


def run_driver(module, sweep=None):
    return module.run(TINY_ENV, matrices=MATRICES, sweep=sweep)


@pytest.mark.parametrize("module", [fig09, table5], ids=["fig09", "table5"])
class TestSerialParallelParity:
    def test_output_and_json_bit_identical(self, module):
        serial = run_driver(module)
        parallel = run_driver(module, sweep=SweepRunner(jobs=4))
        assert serial == parallel
        assert canonical_json(serial) == canonical_json(parallel)

    def test_telemetry_counters_match(self, module):
        counts = {}
        for jobs in (1, 4):
            telemetry = Telemetry(TelemetryConfig(metrics=True))
            sweep = SweepRunner(jobs=jobs, telemetry=telemetry)
            run_driver(module, sweep=sweep)
            counts[jobs] = {
                name: telemetry.metrics.value(name)
                for name in (
                    "spade_sweep_jobs_completed",
                    "spade_sweep_jobs_cached",
                    "spade_sweep_jobs_failed",
                    "spade_sweep_queue_depth",
                )
            }
            assert sweep.report.total == sweep.report.completed > 0
        assert counts[1] == counts[4]
        assert counts[1]["spade_sweep_jobs_failed"] == 0
        assert counts[1]["spade_sweep_queue_depth"] == 0

    def test_manifests_match_modulo_volatile_fields(self, module, tmp_path):
        stamped = {}
        for jobs in (1, 4):
            rows = run_driver(module, sweep=SweepRunner(jobs=jobs))
            stamped[jobs] = write_bench_json(
                tmp_path / f"BENCH_{module.__name__}_{jobs}.json",
                {"rows": json.loads(canonical_json(rows))},
                config=dataclasses.asdict(TINY_ENV),
                workload={"matrices": MATRICES},
            )
        diff = diff_manifests(stamped[1]["manifest"], stamped[4]["manifest"])
        unexpected = {
            key: val for key, val in diff.items()
            if not f"manifest.{key}".startswith(VOLATILE_MANIFEST_PREFIXES)
        }
        assert unexpected == {}
        # In particular the config fingerprint is byte-identical.
        assert (
            stamped[1]["manifest"]["config"]["fingerprint"]
            == stamped[4]["manifest"]["config"]["fingerprint"]
        )
        assert stamped[1]["rows"] == stamped[4]["rows"]


class TestCacheParity:
    def test_warm_cache_serves_serial_bytes(self, tmp_path):
        """A jobs=4 run populates the cache; a second run is 100% cache
        hits and still serialises to the same bytes as serial."""
        serial = run_driver(fig09)
        cold = SweepRunner(jobs=4, cache=open_cache(tmp_path / "c"))
        assert canonical_json(run_driver(fig09, sweep=cold)) == \
            canonical_json(serial)
        assert cold.report.completed == cold.report.total

        warm = SweepRunner(jobs=4, cache=open_cache(tmp_path / "c"))
        rows = run_driver(fig09, sweep=warm)
        assert canonical_json(rows) == canonical_json(serial)
        assert warm.report.cached == warm.report.total
        assert warm.report.completed == 0

    def test_cache_is_orchestration_invariant(self, tmp_path):
        """Worker count and watchdog knobs are excluded from job keys:
        a cache written at jobs=4 serves a jobs=1 run with different
        supervision settings."""
        writer = SweepRunner(jobs=4, cache=open_cache(tmp_path / "c"))
        run_driver(table5, sweep=writer)

        env2 = dataclasses.replace(
            TINY_ENV, jobs=3, timeout_s=120.0, max_retries=2
        )
        reader = SweepRunner(jobs=1, cache=open_cache(tmp_path / "c"))
        rows = table5.run(env2, matrices=MATRICES, sweep=reader)
        assert reader.report.cached == reader.report.total
        assert rows == run_driver(table5)

    def test_changed_environment_misses_cache(self, tmp_path):
        """Result-affecting environment fields DO key the cache."""
        writer = SweepRunner(jobs=1, cache=open_cache(tmp_path / "c"))
        run_driver(table5, sweep=writer)

        env2 = dataclasses.replace(TINY_ENV, cache_shrink=4.0)
        reader = SweepRunner(jobs=1, cache=open_cache(tmp_path / "c"))
        table5.run(env2, matrices=MATRICES, sweep=reader)
        assert reader.report.cached == 0
        assert reader.report.completed == reader.report.total
