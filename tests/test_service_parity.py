"""Differential tests: a served answer is byte-identical to the CLI.

The service's whole correctness claim is that putting HTTP, memoization,
admission, and coalescing in front of the simulator changes *where* an
answer comes from but never *what* it is.  These tests pin that claim on
all three answer paths — cold (executed by the pool), warm (memoized
from the result cache), and coalesced (ridden on another request's
execution) — against ``repro run``'s stdout, plus the end-to-end
concurrency criterion: 32 concurrent HTTP requests over 8 distinct keys
cause exactly 8 simulator executions (audited from the run ledger's
``sweep_job`` events), and a warm rerun causes zero.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.obs.ledger import RunLedger, read_events
from repro.service.admission import AdmissionPolicy
from repro.service.client import ServiceClient
from repro.service.pool import ServicePool
from repro.service.server import (
    PendingReply,
    Reply,
    ServiceServer,
    SimulationService,
)
from repro.service.simulate import format_run_summary, request_point, run_jobspec
from repro.sweep.cache import ResultCache

POINT_ARGS = {
    "matrix": "ASI", "scale": "tiny", "kernel": "spmm", "k": 8, "pes": 2,
}

GENEROUS = AdmissionPolicy(
    max_queue=256, interactive_reserve=0,
    quota_rate=10_000.0, quota_burst=10_000.0,
)


def _cli_run_output(capsys, cache_dir, **over):
    args = {**POINT_ARGS, **over}
    assert main([
        "run", "--matrix", args["matrix"], "--scale", args["scale"],
        "--kernel", args["kernel"], "--k", str(args["k"]),
        "--pes", str(args["pes"]), "--cache-dir", str(cache_dir),
    ]) == 0
    return capsys.readouterr().out


def _settle(service, pending):
    """Await one PendingReply synchronously (tests have no event loop)."""
    try:
        result = pending.future.result(timeout=120)
    except BaseException as exc:  # noqa: BLE001 - rendered as Reply
        return service.finish(pending, None, exc)
    return service.finish(pending, result)


def _answer(service, body):
    outcome = service.begin(body)
    if isinstance(outcome, Reply):
        return outcome
    return _settle(service, outcome)


@pytest.fixture()
def stack(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    pool = ServicePool(cache, workers=2)
    service = SimulationService(cache, pool, policy=GENEROUS)
    yield cache, pool, service
    pool.close()


class TestServedBytesEqualCli:
    def test_cold_path_matches_repro_run(self, stack, tmp_path, capsys):
        cache, pool, service = stack
        expected = _cli_run_output(capsys, tmp_path / "cli-cache")
        reply = _answer(service, dict(POINT_ARGS))
        assert reply.status == 200
        assert reply.payload["source"] == "executed"
        rendered = format_run_summary(
            reply.payload["result"], POINT_ARGS["kernel"], POINT_ARGS["k"]
        ) + "\n"
        assert rendered == expected
        assert pool.executed == 1

    def test_warm_memo_matches_and_skips_execution(
        self, stack, tmp_path, capsys
    ):
        cache, pool, service = stack
        expected = _cli_run_output(capsys, tmp_path / "cli-cache")
        first = _answer(service, dict(POINT_ARGS))
        assert first.status == 200
        warm = _answer(service, dict(POINT_ARGS))
        assert warm.status == 200
        assert warm.payload["source"] == "memo"
        rendered = format_run_summary(
            warm.payload["result"], POINT_ARGS["kernel"], POINT_ARGS["k"]
        ) + "\n"
        assert rendered == expected
        assert pool.executed == 1  # the memo hit executed nothing
        assert warm.payload["result"] == first.payload["result"]

    def test_json_wire_format_is_lossless(self, stack):
        _, _, service = stack
        reply = _answer(service, dict(POINT_ARGS))
        wire = json.loads(json.dumps(reply.payload, sort_keys=True))
        assert wire["result"] == reply.payload["result"]
        rendered = format_run_summary(
            wire["result"], POINT_ARGS["kernel"], POINT_ARGS["k"]
        )
        direct = format_run_summary(
            reply.payload["result"], POINT_ARGS["kernel"], POINT_ARGS["k"]
        )
        assert rendered == direct

    def test_cli_cache_entry_is_a_service_memo_hit(
        self, tmp_path, capsys
    ):
        # One key space: repro run --cache-dir writes the entry the
        # service memoizes from, with zero service-side executions.
        cache_dir = tmp_path / "shared-cache"
        expected = _cli_run_output(capsys, cache_dir)
        cache = ResultCache(str(cache_dir))
        pool = ServicePool(cache, workers=1)
        try:
            service = SimulationService(cache, pool, policy=GENEROUS)
            reply = _answer(service, dict(POINT_ARGS))
            assert reply.status == 200
            assert reply.payload["source"] == "memo"
            rendered = format_run_summary(
                reply.payload["result"], POINT_ARGS["kernel"],
                POINT_ARGS["k"],
            ) + "\n"
            assert rendered == expected
            assert pool.executed == 0
        finally:
            pool.close()


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_execution(
        self, tmp_path
    ):
        # One worker; a first key occupies it, so requests for a second
        # key deterministically pile up behind it and coalesce.
        cache = ResultCache(str(tmp_path / "cache"))
        pool = ServicePool(cache, workers=1)
        try:
            service = SimulationService(cache, pool, policy=GENEROUS)
            blocker = dict(POINT_ARGS)
            target = dict(POINT_ARGS, kernel="sddmm")
            p_block = service.begin(blocker)
            assert isinstance(p_block, PendingReply)
            leader = service.begin(dict(target))
            waiters = [service.begin(dict(target)) for _ in range(3)]
            assert isinstance(leader, PendingReply) and leader.is_leader
            for w in waiters:
                assert isinstance(w, PendingReply) and not w.is_leader
            replies = [
                _settle(service, p)
                for p in [p_block, leader] + waiters
            ]
            assert all(r.status == 200 for r in replies)
            assert replies[1].payload["source"] == "executed"
            for r in replies[2:]:
                assert r.payload["source"] == "coalesced"
                assert r.payload["result"] == replies[1].payload["result"]
            assert pool.executed == 2  # blocker + target, once each
            assert service.coalescer.stats()["coalesced"] == 3
        finally:
            pool.close()


class TestConcurrentHttpEndToEnd:
    N_KEYS = 8
    N_REQUESTS = 32

    def _bodies(self):
        # 8 distinct keys: 4 k-values x 2 kernels, all tiny.
        bodies = []
        for k in (4, 8, 12, 16):
            for kernel in ("spmm", "sddmm"):
                bodies.append(dict(
                    POINT_ARGS, k=k, kernel=kernel,
                ))
        assert len({
            run_jobspec(request_point(b)).key for b in bodies
        }) == self.N_KEYS
        return bodies

    def test_32_requests_8_keys_8_executions(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        ledger = RunLedger(
            tmp_path / "ledger" / "service.jsonl", run_id="svc-e2e"
        )
        pool = ServicePool(
            cache, workers=4, ledger=ledger,
        )
        service = SimulationService(
            cache, pool, policy=GENEROUS, ledger=ledger
        )
        server = ServiceServer(service, port=0)
        server.start_background()
        client = ServiceClient(port=server.port)
        bodies = self._bodies() * (self.N_REQUESTS // self.N_KEYS)
        answers = [None] * len(bodies)

        def _fire(i):
            answers[i] = client.simulate(**bodies[i])

        try:
            threads = [
                threading.Thread(target=_fire, args=(i,))
                for i in range(len(bodies))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            assert all(a is not None for a in answers), \
                "some requests never completed"
            # Identical keys -> identical results, regardless of source.
            by_key = {}
            for a in answers:
                by_key.setdefault(a["key"], []).append(a)
            assert len(by_key) == self.N_KEYS
            for key, group in by_key.items():
                assert len(group) == 4
                results = [g["result"] for g in group]
                assert all(r == results[0] for r in results)
            # Ledger exactly-once audit: one completed execution per key.
            ledger.flush()
            events = read_events(ledger.path)
            completed = [
                e for e in events
                if e["e"] == "sweep_job" and e["status"] == "completed"
            ]
            assert sorted(e["key"] for e in completed) == sorted(by_key)
            assert pool.executed == self.N_KEYS
            # Warm rerun: 100% memo, zero new executions.
            memo_before = service.memo_hits
            warm = [client.simulate(**b) for b in bodies]
            assert all(a["source"] == "memo" for a in warm)
            assert pool.executed == self.N_KEYS
            assert service.memo_hits == memo_before + len(bodies)
        finally:
            server.stop()
            pool.close()
            ledger.close()


class TestHttpSurface:
    def test_health_stats_metrics_and_rejections(self, tmp_path):
        from repro.config import TelemetryConfig
        from repro.telemetry import Telemetry

        cache = ResultCache(str(tmp_path / "cache"))
        telemetry = Telemetry(TelemetryConfig(metrics=True))
        pool = ServicePool(cache, workers=1, telemetry=telemetry)
        service = SimulationService(
            cache, pool, policy=GENEROUS, telemetry=telemetry
        )
        server = ServiceServer(service, port=0)
        server.start_background()
        client = ServiceClient(port=server.port)
        try:
            assert client.healthy()
            status, payload, _ = client.request(
                "POST", "/v1/simulate", {"matrix": "nope"}
            )
            assert status == 400
            assert "suite names" in payload["error"]
            status, payload, _ = client.request(
                "POST", "/v1/simulate",
                {"matrix": "tests/data/evil.mtx"},
            )
            assert status == 400  # path injection refused
            status, payload, _ = client.request("GET", "/nope")
            assert status == 404
            client.simulate(**POINT_ARGS)
            stats = client.stats()
            assert stats["requests"] == 3  # 2 bad + 1 good
            assert stats["served"] == 1
            text = client.metrics_text()
            assert "spade_service_requests" in text
        finally:
            server.stop()
            pool.close()
