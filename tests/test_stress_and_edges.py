"""Stress and edge-case battery across the system boundary.

Failure injection and degenerate inputs: empty-ish matrices, single-PE
systems, extreme tile shapes, dense rows hitting exactly one line,
matrices with empty rows/columns, and adversarial column patterns.
"""

import numpy as np
import pytest

from repro import KernelSettings, SpadeSystem
from repro.config import scaled_config
from repro.kernels import spmm_reference
from repro.sparse.coo import COOMatrix


@pytest.fixture()
def one_pe_system():
    return SpadeSystem(scaled_config(1, cache_shrink=8))


def _verify(system, a, k=16, settings=None):
    rng = np.random.default_rng(a.nnz + k)
    b = rng.random((a.num_cols, k), dtype=np.float32)
    rep = system.spmm(a, b, settings)
    np.testing.assert_allclose(
        rep.output, spmm_reference(a, b), rtol=1e-4, atol=1e-4
    )
    return rep


class TestDegenerateMatrices:
    def test_single_entry(self, one_pe_system):
        a = COOMatrix(
            1, 1, np.array([0]), np.array([0]),
            np.array([2.5], dtype=np.float32),
        )
        rep = _verify(one_pe_system, a)
        assert rep.counters.tops == 1

    def test_single_row_many_cols(self, one_pe_system):
        n = 500
        a = COOMatrix(
            1, n, np.zeros(n, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            np.ones(n, dtype=np.float32),
        )
        _verify(one_pe_system, a)

    def test_single_col_many_rows(self, one_pe_system):
        n = 500
        a = COOMatrix(
            n, 1, np.arange(n, dtype=np.int64),
            np.zeros(n, dtype=np.int64),
            np.ones(n, dtype=np.float32),
        )
        rep = _verify(one_pe_system, a)
        # One cMatrix row: near-total VRF/cache reuse.
        assert rep.stats.by_region.get("cmatrix", 0) <= 4

    def test_diagonal_matrix(self, one_pe_system):
        n = 200
        a = COOMatrix(
            n, n, np.arange(n), np.arange(n),
            np.ones(n, dtype=np.float32),
        )
        _verify(one_pe_system, a)

    def test_matrix_with_empty_rows_and_cols(self, one_pe_system):
        a = COOMatrix(
            100, 100, np.array([0, 99]), np.array([99, 0]),
            np.array([1.0, 2.0], dtype=np.float32),
        )
        _verify(one_pe_system, a)

    def test_anti_diagonal(self, one_pe_system):
        n = 128
        a = COOMatrix(
            n, n, np.arange(n), n - 1 - np.arange(n),
            np.ones(n, dtype=np.float32),
        )
        _verify(one_pe_system, a)


class TestExtremeTileShapes:
    def test_one_row_panels(self, small_graph):
        system = SpadeSystem(scaled_config(2, cache_shrink=8))
        _verify(
            system, small_graph,
            settings=KernelSettings(row_panel_size=1),
        )

    def test_one_column_panels(self, small_graph):
        system = SpadeSystem(scaled_config(2, cache_shrink=8))
        _verify(
            system, small_graph,
            settings=KernelSettings(row_panel_size=8, col_panel_size=1),
        )

    def test_single_tile(self, small_graph):
        system = SpadeSystem(scaled_config(2, cache_shrink=8))
        rep = _verify(
            system, small_graph,
            settings=KernelSettings(row_panel_size=10**6),
        )
        # One row panel -> one PE does everything.
        assert rep.load_imbalance == pytest.approx(
            system.config.num_pes, rel=0.01
        )

    def test_barriers_with_single_column_panel(self, small_graph):
        """Barriers with one panel degrade to the no-barrier schedule."""
        system = SpadeSystem(scaled_config(2, cache_shrink=8))
        rep = _verify(
            system, small_graph,
            settings=KernelSettings(use_barriers=True),
        )
        assert len(rep.result.epoch_timings) == 1


class TestAdversarialPatterns:
    def test_column_conflict_storm(self, one_pe_system):
        """All nonzeros hit columns that map to the same cache set."""
        num_sets = one_pe_system.config.pe.l1d.num_sets
        n = 256
        cols = (np.arange(n) * num_sets) % 4096
        a = COOMatrix(
            n, 4096, np.arange(n, dtype=np.int64),
            cols.astype(np.int64), np.ones(n, dtype=np.float32),
        )
        _verify(one_pe_system, a)

    def test_hub_column(self, one_pe_system):
        """Power-law extreme: every row touches column 0 plus one
        random column; the hub line should be a near-perfect hit."""
        n = 400
        rng = np.random.default_rng(3)
        r = np.repeat(np.arange(n, dtype=np.int64), 2)
        c = np.empty(2 * n, dtype=np.int64)
        c[0::2] = 0
        c[1::2] = rng.integers(1, 1000, n)
        a = COOMatrix.from_edges(n, 1000, np.stack([r, c], 1))
        rep = _verify(one_pe_system, a)
        assert rep.stats.l1.hit_rate > 0.3

    def test_chunk_smaller_than_tiles(self, small_graph):
        """A tiny interleave chunk must not change results."""
        system = SpadeSystem(
            scaled_config(2, cache_shrink=8), chunk_nnz=3
        )
        _verify(system, small_graph)

    def test_k_one(self, one_pe_system, small_graph):
        _verify(one_pe_system, small_graph, k=1)

    def test_large_k(self, one_pe_system):
        a = COOMatrix(
            16, 16,
            np.arange(16), (np.arange(16) * 3) % 16,
            np.ones(16, dtype=np.float32),
        )
        rep = _verify(one_pe_system, a, k=256)
        assert rep.counters.vops == 16 * 16  # 256 floats = 16 lines
