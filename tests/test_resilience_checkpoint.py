"""Checkpoint/resume: state round-trips, corruption handling, and
kill-then-resume bit-exactness across all execution backends."""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np
import pytest

from repro.config import ResilienceConfig, scaled_config
from repro.core.accelerator import KernelSettings, SpadeSystem
from repro.errors import CheckpointError
from repro.memory.hierarchy import MemorySystem
from repro.resilience import (
    ChaosConfig,
    ChaosMonkey,
    CheckpointManager,
    InjectedCrash,
    checkpoint_fingerprint,
)
from repro.sparse.generators import rmat_graph

BACKENDS = ("scalar", "vectorized", "pipelined")

MULTI_EPOCH_SETTINGS = KernelSettings(
    row_panel_size=32, col_panel_size=64, use_barriers=True
)


def fingerprint(report) -> dict:
    """Everything a resumed run must reproduce exactly."""
    out = np.ascontiguousarray(report.output)
    return {
        "time_ns": report.result.time_ns,
        "compute_time_ns": report.result.compute_time_ns,
        "epochs": len(report.result.epoch_timings),
        "epoch_times": [
            t.epoch_time_ns for t in report.result.epoch_timings
        ],
        "per_pe_time_ns": report.result.per_pe_time_ns,
        "counters": dataclasses.asdict(report.result.counters),
        "stats": report.result.stats.summary(),
        "output_sha256": hashlib.sha256(out.tobytes()).hexdigest(),
    }


@pytest.fixture(scope="module")
def workload():
    a = rmat_graph(scale=8, seed=5)
    b = np.random.default_rng(0).random((a.num_cols, 16), dtype=np.float32)
    b_r = np.random.default_rng(1).random((a.num_rows, 16), dtype=np.float32)
    return a, b, b_r


@pytest.fixture(scope="module")
def base_config():
    return scaled_config(4, cache_shrink=8)


@pytest.fixture(scope="module")
def golden(workload, base_config):
    a, b, _ = workload
    report = SpadeSystem(base_config).spmm(
        a, b, settings=MULTI_EPOCH_SETTINGS
    )
    assert len(report.result.epoch_timings) >= 3, (
        "kill-then-resume needs a multi-epoch schedule"
    )
    return report


class TestStateRoundTrips:
    def test_memory_system_state_round_trip(self, base_config, workload):
        a, b, _ = workload
        system = SpadeSystem(base_config)
        system.spmm(a, b)
        # Drive one memory system, snapshot it, restore into a fresh one.
        mem = MemorySystem(base_config)
        for line in range(0, 500, 3):
            mem.dense_access(0, line, region="rmatrix")
            mem.stream_access(1, line + 1, region="sparse")
        state = mem.state_dict()
        fresh = MemorySystem(base_config)
        fresh.load_state_dict(state)
        assert fresh.state_dict() == state
        assert fresh.collect_stats().summary() == mem.collect_stats().summary()
        # Post-restore behaviour matches: same access, same service level.
        assert fresh.dense_access(0, 3, region="rmatrix") == mem.dense_access(
            0, 3, region="rmatrix"
        )

    def test_memory_state_rejects_wrong_geometry(self, base_config):
        mem = MemorySystem(base_config)
        state = mem.state_dict()
        other = MemorySystem(scaled_config(8, cache_shrink=8))
        with pytest.raises(ValueError):
            other.load_state_dict(state)

    def test_vrf_state_round_trip(self):
        from repro.core.vrf import VectorRegisterFile

        vrf = VectorRegisterFile(8)
        for line in (1, 2, 3, 1, 9, 2, 11, 12, 13, 14):
            vrf.access(line, mark_dirty=line % 2 == 0)
        state = vrf.state_dict()
        fresh = VectorRegisterFile(8)
        fresh.load_state_dict(state)
        assert fresh.state_dict() == state
        assert fresh.access(5, mark_dirty=True) == vrf.access(
            5, mark_dirty=True
        )


class TestCheckpointFiles:
    def test_write_then_read_round_trip(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), fingerprint="f" * 64)
        state = {"next_epoch": 2, "output": np.arange(6.0)}
        path = mgr.write(1, state, meta={"primitive": "spmm"})
        header, loaded = mgr.read(path)
        assert header["epoch"] == 1
        assert header["meta"] == {"primitive": "spmm"}
        assert loaded["next_epoch"] == 2
        np.testing.assert_array_equal(loaded["output"], state["output"])

    def test_truncated_checkpoint_is_rejected(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path))
        path = mgr.write(0, {"payload": list(range(1000))})
        size = path and __import__("os").path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        with pytest.raises(CheckpointError, match="truncated"):
            mgr.read(path)

    def test_bit_flip_is_rejected(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path))
        path = mgr.write(0, {"payload": list(range(1000))})
        with open(path, "r+b") as fh:
            data = fh.read()
            fh.seek(len(data) - 10)
            fh.write(b"\x00" if data[-10:-9] != b"\x00" else b"\x01")
        with pytest.raises(CheckpointError, match="integrity"):
            mgr.read(path)

    def test_wrong_magic_is_rejected(self, tmp_path):
        bad = tmp_path / "ckpt-epoch-000000.ckpt"
        bad.write_bytes(json.dumps({"format": "other"}).encode() + b"\n")
        mgr = CheckpointManager(str(tmp_path))
        with pytest.raises(CheckpointError, match="spade-checkpoint"):
            mgr.read(str(bad))

    def test_fingerprint_mismatch_is_rejected(self, tmp_path):
        writer = CheckpointManager(str(tmp_path), fingerprint="a" * 64)
        path = writer.write(0, {"x": 1})
        reader = CheckpointManager(str(tmp_path), fingerprint="b" * 64)
        with pytest.raises(CheckpointError, match="fingerprint"):
            reader.read(path)

    def test_load_latest_falls_back_to_older_valid(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path))
        mgr.write(0, {"epoch": 0})
        newest = mgr.write(1, {"epoch": 1})
        with open(newest, "r+b") as fh:
            fh.truncate(5)
        header, state = mgr.load_latest()
        assert header["epoch"] == 0
        assert state == {"epoch": 0}

    def test_load_latest_empty_dir_returns_none(self, tmp_path):
        assert CheckpointManager(str(tmp_path)).load_latest() is None

    def test_load_latest_all_corrupt_raises(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path))
        path = mgr.write(0, {"x": 1})
        with open(path, "r+b") as fh:
            fh.truncate(3)
        with pytest.raises(CheckpointError, match="no loadable"):
            mgr.load_latest()

    def test_interval_controls_cadence(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), interval=3)
        assert [e for e in range(9) if mgr.should_write(e)] == [2, 5, 8]

    def test_fingerprint_ignores_backend_and_resilience(self, base_config):
        fp = checkpoint_fingerprint(base_config)
        variants = [
            dataclasses.replace(base_config, execution="pipelined"),
            dataclasses.replace(base_config, replay="scalar"),
            dataclasses.replace(
                base_config,
                resilience=ResilienceConfig(checkpoint_dir="/tmp/x"),
            ),
        ]
        for variant in variants:
            assert checkpoint_fingerprint(variant) == fp
        shrunk = scaled_config(8, cache_shrink=8)
        assert checkpoint_fingerprint(shrunk) != fp


class TestKillAndResume:
    def _with_resilience(self, config, backend, **res):
        return dataclasses.replace(
            config,
            execution=backend,
            resilience=ResilienceConfig(**res),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kill_then_resume_is_bit_identical(
        self, tmp_path, workload, base_config, golden, backend
    ):
        a, b, _ = workload
        kill_at = len(golden.result.epoch_timings) // 2
        cfg = self._with_resilience(
            base_config, backend, checkpoint_dir=str(tmp_path)
        )
        monkey = ChaosMonkey(ChaosConfig(kill_after_epoch=kill_at))
        with pytest.raises(InjectedCrash):
            SpadeSystem(cfg, chaos=monkey).spmm(
                a, b, settings=MULTI_EPOCH_SETTINGS
            )
        resumed_cfg = self._with_resilience(
            base_config, backend, checkpoint_dir=str(tmp_path), resume=True
        )
        report = SpadeSystem(resumed_cfg).spmm(
            a, b, settings=MULTI_EPOCH_SETTINGS
        )
        assert fingerprint(report) == fingerprint(golden)

    def test_cross_backend_resume(
        self, tmp_path, workload, base_config, golden
    ):
        """A checkpoint written by a pipelined run resumes under the
        scalar backend (what the degradation ladder relies on)."""
        a, b, _ = workload
        cfg = self._with_resilience(
            base_config, "pipelined", checkpoint_dir=str(tmp_path)
        )
        monkey = ChaosMonkey(ChaosConfig(kill_after_epoch=1))
        with pytest.raises(InjectedCrash):
            SpadeSystem(cfg, chaos=monkey).spmm(
                a, b, settings=MULTI_EPOCH_SETTINGS
            )
        resumed_cfg = self._with_resilience(
            base_config, "scalar", checkpoint_dir=str(tmp_path), resume=True
        )
        report = SpadeSystem(resumed_cfg).spmm(
            a, b, settings=MULTI_EPOCH_SETTINGS
        )
        assert fingerprint(report) == fingerprint(golden)

    def test_checkpointing_does_not_perturb_results(
        self, tmp_path, workload, base_config, golden
    ):
        a, b, _ = workload
        cfg = self._with_resilience(
            base_config, "scalar", checkpoint_dir=str(tmp_path)
        )
        report = SpadeSystem(cfg).spmm(a, b, settings=MULTI_EPOCH_SETTINGS)
        assert fingerprint(report) == fingerprint(golden)
        n_epochs = len(golden.result.epoch_timings)
        assert len(list(tmp_path.glob("ckpt-epoch-*.ckpt"))) == n_epochs

    def test_resume_of_completed_run_is_identical(
        self, tmp_path, workload, base_config, golden
    ):
        a, b, _ = workload
        cfg = self._with_resilience(
            base_config, "scalar", checkpoint_dir=str(tmp_path)
        )
        SpadeSystem(cfg).spmm(a, b, settings=MULTI_EPOCH_SETTINGS)
        resumed_cfg = self._with_resilience(
            base_config, "scalar", checkpoint_dir=str(tmp_path), resume=True
        )
        report = SpadeSystem(resumed_cfg).spmm(
            a, b, settings=MULTI_EPOCH_SETTINGS
        )
        assert report.result.output_dense is not None
        assert fingerprint(report) == fingerprint(golden)

    def test_resume_with_empty_dir_runs_fresh(
        self, tmp_path, workload, base_config, golden
    ):
        a, b, _ = workload
        cfg = self._with_resilience(
            base_config, "scalar", checkpoint_dir=str(tmp_path), resume=True
        )
        report = SpadeSystem(cfg).spmm(a, b, settings=MULTI_EPOCH_SETTINGS)
        assert fingerprint(report) == fingerprint(golden)

    def test_resume_rejects_different_workload(
        self, tmp_path, workload, base_config
    ):
        a, b, b_r = workload
        cfg = self._with_resilience(
            base_config, "scalar", checkpoint_dir=str(tmp_path)
        )
        SpadeSystem(cfg).spmm(a, b, settings=MULTI_EPOCH_SETTINGS)
        resumed_cfg = self._with_resilience(
            base_config, "scalar", checkpoint_dir=str(tmp_path), resume=True
        )
        with pytest.raises(CheckpointError, match="primitive"):
            SpadeSystem(resumed_cfg).sddmm(
                a, b_r, b, settings=MULTI_EPOCH_SETTINGS
            )

    def test_sddmm_kill_then_resume(self, tmp_path, workload, base_config):
        a, b, b_r = workload
        golden = SpadeSystem(base_config).sddmm(
            a, b_r, b, settings=MULTI_EPOCH_SETTINGS
        )
        assert len(golden.result.epoch_timings) >= 2
        cfg = self._with_resilience(
            base_config, "vectorized", checkpoint_dir=str(tmp_path)
        )
        monkey = ChaosMonkey(ChaosConfig(kill_after_epoch=0))
        with pytest.raises(InjectedCrash):
            SpadeSystem(cfg, chaos=monkey).sddmm(
                a, b_r, b, settings=MULTI_EPOCH_SETTINGS
            )
        resumed_cfg = self._with_resilience(
            base_config, "vectorized",
            checkpoint_dir=str(tmp_path), resume=True,
        )
        report = SpadeSystem(resumed_cfg).sddmm(
            a, b_r, b, settings=MULTI_EPOCH_SETTINGS
        )
        assert report.result.output_vals is not None
        assert fingerprint(report) == fingerprint(golden)

    def test_checkpoints_written_counter(
        self, tmp_path, workload, base_config, golden
    ):
        from repro.config import TelemetryConfig
        from repro.telemetry import Telemetry

        a, b, _ = workload
        cfg = dataclasses.replace(
            self._with_resilience(
                base_config, "scalar", checkpoint_dir=str(tmp_path)
            ),
            telemetry=TelemetryConfig(metrics=True),
        )
        telemetry = Telemetry(cfg.telemetry)
        SpadeSystem(cfg, telemetry=telemetry).spmm(
            a, b, settings=MULTI_EPOCH_SETTINGS
        )
        written = telemetry.metrics.counter("spade_checkpoints_written")
        assert written.value == len(golden.result.epoch_timings)
