"""Unit tests for the set-associative cache."""

import pytest

from repro.config import CacheConfig
from repro.memory.cache import Cache


def make_cache(size_kb=1, assoc=2) -> Cache:
    return Cache(CacheConfig(size_bytes=size_kb * 1024, associativity=assoc))


class TestGeometry:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=8192, associativity=4)
        assert cfg.num_sets == 32
        assert cfg.num_lines == 128

    def test_rejects_misaligned_size(self):
        with pytest.raises(ValueError, match="not divisible"):
            CacheConfig(size_bytes=1000, associativity=3)


class TestHitMiss:
    def test_first_access_misses(self):
        c = make_cache()
        hit, evicted = c.access(0)
        assert not hit and evicted is None
        assert c.misses == 1

    def test_second_access_hits(self):
        c = make_cache()
        c.access(0)
        hit, _ = c.access(0)
        assert hit
        assert c.hits == 1

    def test_hit_rate(self):
        c = make_cache()
        c.access(0)
        c.access(0)
        c.access(0)
        assert c.hit_rate == pytest.approx(2 / 3)

    def test_probe_does_not_touch_stats(self):
        c = make_cache()
        c.access(5)
        before = (c.hits, c.misses)
        assert c.probe(5)
        assert not c.probe(6)
        assert (c.hits, c.misses) == before


class TestLRUReplacement:
    def test_lru_eviction_order(self):
        # 2-way cache: fill one set with lines A, B; touching A then
        # inserting C must evict B (the LRU).
        c = make_cache(size_kb=1, assoc=2)
        sets = c.num_sets
        a, b_, new = 0, sets, 2 * sets  # same set index
        c.access(a)
        c.access(b_)
        c.access(a)  # a becomes MRU
        c.access(new)  # evicts b_
        assert c.probe(a)
        assert not c.probe(b_)
        assert c.probe(new)

    def test_eviction_of_clean_line_returns_none(self):
        c = make_cache(size_kb=1, assoc=2)
        sets = c.num_sets
        c.access(0)
        c.access(sets)
        _, evicted = c.access(2 * sets)
        assert evicted is None  # victim was clean

    def test_eviction_of_dirty_line_returned(self):
        c = make_cache(size_kb=1, assoc=2)
        sets = c.num_sets
        c.access(0, is_write=True)
        c.access(sets)
        _, evicted = c.access(2 * sets)
        assert evicted == 0
        assert c.writebacks == 1

    def test_working_set_within_capacity_never_evicts(self):
        c = make_cache(size_kb=1, assoc=4)
        lines = list(range(c.num_sets * 4))
        for ln in lines:
            c.access(ln)
        for ln in lines:
            hit, _ = c.access(ln)
            assert hit


class TestDirtyTracking:
    def test_write_marks_dirty(self):
        c = make_cache()
        c.access(3, is_write=True)
        assert c.dirty_lines() == 1

    def test_read_after_write_keeps_dirty(self):
        c = make_cache()
        c.access(3, is_write=True)
        c.access(3, is_write=False)
        assert c.dirty_lines() == 1

    def test_invalidate_returns_dirty_flag(self):
        c = make_cache()
        c.access(1, is_write=True)
        c.access(2, is_write=False)
        assert c.invalidate(1) is True
        assert c.invalidate(2) is False
        assert c.invalidate(99) is False

    def test_flush_writes_back_dirty_only(self):
        c = make_cache()
        c.access(1, is_write=True)
        c.access(2)
        c.access(3, is_write=True)
        assert c.flush() == 2
        assert c.occupancy() == 0
        assert c.writebacks == 2

    def test_reset_stats(self):
        c = make_cache()
        c.access(1, is_write=True)
        c.flush()
        c.reset_stats()
        assert c.hits == c.misses == c.writebacks == c.fills == 0
