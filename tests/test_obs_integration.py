"""Integration tests: the run ledger wired through the supervisor,
engine, replay dispatch, sweep shards, CLI, and provenance."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import main
from repro.config import ObsConfig, ResilienceConfig, scaled_config
from repro.errors import EngineExecutionError
from repro.obs import NULL_LEDGER, RunLedger, open_run_ledger, read_events
from repro.resilience import ChaosConfig, ChaosMonkey, RunSupervisor
from repro.sparse.generators import uniform_random
from repro.sweep import SweepRunner, open_cache
from repro.telemetry import Telemetry
from repro.telemetry.provenance import run_manifest


@pytest.fixture(scope="module")
def workload():
    a = uniform_random(256, 256, nnz=4000, seed=3)
    b = np.random.default_rng(0).random((a.num_cols, 8), dtype=np.float32)
    return a, b


def array_config(**overrides):
    cfg = scaled_config(4)
    return dataclasses.replace(cfg, replay="array", **overrides)


def run_with_ledger(tmp_path, workload, **cfg_overrides):
    a, b = workload
    ledger = open_run_ledger(tmp_path, run_id="itest", validate=True)
    sup = RunSupervisor(ledger=ledger)
    report = sup.run_kernel(array_config(**cfg_overrides), "spmm", a, b)
    ledger.close()
    return report, read_events(ledger.path)


class TestDispatchAudit:
    def test_every_considered_partition_is_audited(
        self, tmp_path, workload
    ):
        _, events = run_with_ledger(tmp_path, workload)
        dispatch = [e for e in events if e["e"] == "dispatch"]
        assert dispatch, "array replay must consider partitions"
        for ev in dispatch:
            assert ev["level"] in ("l1", "l2", "llc")
            assert ev["chosen"] in ("array", "dict", "batched")
            assert ev["events"] >= 0
            assert 0.0 <= ev["miss_rate"] <= 1.0
            assert ev["predicted_py_us"] >= 0
            assert ev["measured_us"] >= 0
            # Cost-model decisions carry both predictions; min-events
            # floor decisions never computed the array cost.
            if ev.get("reason") == "cost_model":
                assert ev["predicted_array_us"] is not None

    def test_results_identical_with_ledger_on_and_off(
        self, tmp_path, workload
    ):
        a, b = workload
        baseline = RunSupervisor().run_kernel(array_config(), "spmm", a, b)
        report, _ = run_with_ledger(tmp_path, workload)
        np.testing.assert_array_equal(report.output, baseline.output)
        assert report.time_ns == baseline.time_ns
        assert report.dram_accesses == baseline.dram_accesses

    def test_disabled_ledger_records_nothing(self, tmp_path, workload):
        a, b = workload
        sup = RunSupervisor()  # NULL_LEDGER by default
        assert sup.ledger is NULL_LEDGER
        sup.run_kernel(array_config(), "spmm", a, b)
        assert list(tmp_path.iterdir()) == []


class TestRunLifecycle:
    def test_run_start_epoch_end_sequence(self, tmp_path, workload):
        report, events = run_with_ledger(tmp_path, workload)
        kinds = [e["e"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        start = events[0]
        assert start["kernel"] == "spmm"
        assert start["replay"] == "array"
        assert len(start["config_fingerprint"]) == 64
        end = events[-1]
        assert end["status"] == "ok"
        assert end["wall_s"] > 0
        assert end["time_ns"] == pytest.approx(float(report.time_ns))
        epochs = [e for e in events if e["e"] == "epoch"]
        assert epochs
        for ev in epochs:
            assert ev["gen_s"] >= 0 and ev["replay_s"] >= 0
            assert ev["epoch_time_ns"] > 0

    def test_checkpoint_events(self, tmp_path, workload):
        a, b = workload
        ledger = open_run_ledger(
            tmp_path / "led", run_id="ck", validate=True
        )
        res = ResilienceConfig(
            checkpoint_dir=str(tmp_path / "snaps"), checkpoint_interval=1
        )
        sup = RunSupervisor(resilience=res, ledger=ledger)
        sup.run_kernel(array_config(resilience=res), "spmm", a, b)
        ledger.close()
        events = read_events(ledger.path)
        ckpts = [e for e in events if e["e"] == "checkpoint"]
        assert ckpts
        assert all(e["wall_s"] >= 0 for e in ckpts)

    def test_pipelined_run_audits_and_times_phases(
        self, tmp_path, workload
    ):
        _, events = run_with_ledger(
            tmp_path, workload, execution="pipelined"
        )
        assert any(e["e"] == "dispatch" for e in events)
        epochs = [e for e in events if e["e"] == "epoch"]
        assert epochs and all(e["replay_s"] >= 0 for e in epochs)


class TestResilienceEvents:
    def test_call_retries_are_recorded(self, tmp_path):
        ledger = RunLedger(tmp_path / "r.jsonl", validate=True)
        sup = RunSupervisor(
            resilience=ResilienceConfig(
                max_retries=2, backoff_base_s=0.0
            ),
            sleep=lambda s: None,
            ledger=ledger,
        )
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise EngineExecutionError("boom")
            return "ok"

        assert sup.call(flaky) == "ok"
        ledger.close()
        retries = [
            e for e in read_events(ledger.path) if e["e"] == "retry"
        ]
        assert [e["attempt"] for e in retries] == [1, 2]
        assert all("boom" in e["cause"] for e in retries)

    def test_degradation_records_rung_transition(
        self, tmp_path, workload
    ):
        a, b = workload
        ledger = RunLedger(tmp_path / "d.jsonl", validate=True)
        monkey = ChaosMonkey(
            ChaosConfig(
                worker_fault_rate=1.0, fault_backends=("pipelined",)
            )
        )
        sup = RunSupervisor(
            resilience=ResilienceConfig(backoff_base_s=0.0),
            chaos=monkey,
            sleep=lambda s: None,
            ledger=ledger,
        )
        cfg = array_config(execution="pipelined")
        sup.run_kernel(cfg, "spmm", a, b)
        ledger.close()
        events = read_events(ledger.path)
        degr = [e for e in events if e["e"] == "degradation"]
        assert len(degr) == 1
        assert degr[0]["from_execution"] == "pipelined"
        assert degr[0]["to_execution"] == "vectorized"
        assert "fault" in degr[0]["cause"] or degr[0]["cause"]
        end = [e for e in events if e["e"] == "run_end"][-1]
        assert end["status"] == "ok"

    def test_failed_run_ends_with_error(self, tmp_path, workload):
        a, b = workload
        ledger = RunLedger(tmp_path / "f.jsonl", validate=True)
        monkey = ChaosMonkey(
            ChaosConfig(
                worker_fault_rate=1.0, fault_backends=("vectorized",)
            )
        )
        sup = RunSupervisor(
            resilience=ResilienceConfig(
                backoff_base_s=0.0, degrade=False
            ),
            chaos=monkey,
            sleep=lambda s: None,
            ledger=ledger,
        )
        with pytest.raises(EngineExecutionError):
            sup.run_kernel(array_config(), "spmm", a, b)
        ledger.close()
        end = read_events(ledger.path)[-1]
        assert end["e"] == "run_end"
        assert end["status"] == "failed"
        assert end["error"]


def _sweep_cell(env, point):
    """Module-level so pool workers can import it."""
    (x,) = point
    if x < 0:
        raise ValueError(f"negative point {x}")
    return {"square": x * x}


class TestSweepLedger:
    def test_shards_merge_in_grid_order(self, tmp_path):
        ledger = RunLedger(tmp_path / "run-p.jsonl", run_id="parent")
        runner = SweepRunner(jobs=2, ledger=ledger)
        out = runner.map_grid(
            "t", None, _sweep_cell, [(1,), (2,), (3,), (4,)]
        )
        ledger.close()
        assert [r["square"] for r in out] == [1, 4, 9, 16]
        events = read_events(ledger.path)
        started = [
            e["index"] for e in events
            if e["e"] == "sweep_job" and e["status"] == "started"
        ]
        assert started == [0, 1, 2, 3]  # deterministic shard order
        completed = [
            e for e in events
            if e["e"] == "sweep_job" and e["status"] == "completed"
        ]
        assert len(completed) == 4
        assert all(e["wall_s"] >= 0 for e in completed)
        # Each job's events carry its own key-derived run id.
        assert len({e["run"] for e in events}) == 4
        assert not list(tmp_path.glob("shard-*.jsonl"))

    def test_cache_hits_recorded_by_parent(self, tmp_path):
        cache = open_cache(tmp_path / "cache")
        first = SweepRunner(jobs=1, cache=cache)
        first.map_grid("t", None, _sweep_cell, [(5,), (6,)])
        ledger = RunLedger(tmp_path / "run-w.jsonl", run_id="warm")
        warm = SweepRunner(
            jobs=1, cache=open_cache(tmp_path / "cache"), ledger=ledger
        )
        warm.map_grid("t", None, _sweep_cell, [(5,), (6,)])
        ledger.close()
        events = read_events(ledger.path)
        hits = [e for e in events if e["e"] == "cache_hit"]
        assert [h["index"] for h in hits] == [0, 1]
        assert all(h["run"] == "warm" for h in hits)
        assert not any(e["e"] == "sweep_job" for e in events)

    def test_failed_job_recorded_then_raised(self, tmp_path):
        from repro.errors import SweepJobError

        ledger = RunLedger(tmp_path / "run-f.jsonl", run_id="fail")
        runner = SweepRunner(jobs=1, ledger=ledger)
        with pytest.raises(SweepJobError):
            runner.map_grid("t", None, _sweep_cell, [(1,), (-1,)])
        ledger.close()
        failed = [
            e for e in read_events(ledger.path)
            if e["e"] == "sweep_job" and e["status"] == "failed"
        ]
        assert len(failed) == 1
        assert "negative point" in failed[0]["error"]

    def test_worker_process_metadata_in_trace(self, tmp_path):
        from repro.config import TelemetryConfig

        telemetry = Telemetry(TelemetryConfig(trace=True))
        runner = SweepRunner(jobs=2, telemetry=telemetry)
        runner.map_grid("t", None, _sweep_cell, [(1,), (2,), (3,)])
        chrome = telemetry.tracer.to_chrome()
        names = [
            e for e in chrome["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        sorts = [
            e for e in chrome["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_sort_index"
        ]
        assert names and sorts
        assert all(
            e["args"]["name"].startswith("sweep worker") for e in names
        )
        assert len(names) == len(sorts)


class TestProvenanceLinks:
    def test_manifest_embeds_ledger_summary(self, tmp_path):
        ledger = RunLedger(tmp_path / "run-m.jsonl", run_id="mani")
        ledger.emit("checkpoint", epoch=0, wall_s=0.0)
        manifest = run_manifest(ledger=ledger)
        assert manifest["ledger"]["run_id"] == "mani"
        assert manifest["ledger"]["events"] == 1
        assert manifest["ledger"]["digest"]
        # Null ledger contributes nothing.
        assert "ledger" not in run_manifest(ledger=NULL_LEDGER)

    def test_bench_json_stamps_rss_and_ledger(self, tmp_path):
        from repro.bench.harness import write_bench_json

        ledger = RunLedger(tmp_path / "run-b.jsonl", run_id="bench")
        ledger.emit("checkpoint", epoch=0, wall_s=0.0)
        out = write_bench_json(
            tmp_path / "BENCH_x.json",
            {"metric": 1.0},
            workload={"what": "test"},
            ledger=ledger,
        )
        manifest = out["manifest"]
        assert manifest["extra"]["peak_rss_bytes"] > 0
        assert manifest["ledger"]["run_id"] == "bench"
        on_disk = json.loads((tmp_path / "BENCH_x.json").read_text())
        assert on_disk["metric"] == 1.0
        assert on_disk["manifest"]["ledger"]["events"] == 1


class TestObsConfig:
    def test_disabled_yields_null_ledger(self):
        assert ObsConfig().make_ledger() is NULL_LEDGER
        assert not ObsConfig().enabled

    def test_enabled_derives_run_id_from_parts(self, tmp_path):
        obs = ObsConfig(ledger_dir=str(tmp_path))
        a = obs.make_ledger("x", "y")
        b = obs.make_ledger("x", "y")
        assert a.run_id == b.run_id  # content-addressed
        assert a.path.parent == tmp_path


class TestObsCli:
    @pytest.fixture()
    def ledger_dir(self, tmp_path, workload):
        run_with_ledger(tmp_path, workload)
        return tmp_path

    def test_cli_run_writes_and_validates(self, tmp_path, capsys):
        led = tmp_path / "led"
        rc = main([
            "run", "--matrix", "KRO", "--scale", "tiny", "--k", "4",
            "--pes", "4", "--replay", "array",
            "--ledger", str(led),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ledger written" in out
        rc = main(["obs", "validate", "--require-dispatch", str(led)])
        assert rc == 0
        assert "validated" in capsys.readouterr().out

    def test_obs_report_text_and_json(self, ledger_dir, capsys):
        assert main(["obs", "report", str(ledger_dir)]) == 0
        text = capsys.readouterr().out
        assert "replay dispatch audit" in text
        assert "phase hotspots" in text
        assert main(["obs", "report", "--json", str(ledger_dir)]) == 0
        agg = json.loads(capsys.readouterr().out)
        assert agg["dispatch"]["total"] > 0
        assert "misprediction_rate" in agg["dispatch"]

    def test_obs_report_out_file(self, ledger_dir, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = main([
            "obs", "report", "--json", "--out", str(out),
            str(ledger_dir),
        ])
        assert rc == 0
        assert json.loads(out.read_text())["events"] > 0

    def test_obs_report_empty_dir_errors(self, tmp_path, capsys):
        rc = main(["obs", "report", str(tmp_path / "nothing")])
        assert rc == 2
        assert "no ledger" in capsys.readouterr().err

    def test_obs_validate_catches_corruption(self, tmp_path, capsys):
        bad = tmp_path / "run-bad.jsonl"
        bad.write_text('{"e": "epoch", "t": 0.1, "run": "x"}\n')
        rc = main(["obs", "validate", str(bad)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_obs_schema_prints_json_schema(self, capsys):
        assert main(["obs", "schema"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["oneOf"]
