"""Property-based tests (hypothesis) on the sweep orchestrator's
hashing, grid expansion, and result cache."""

import dataclasses
import itertools
from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings, strategies as st

from repro.bench.harness import BenchEnvironment
from repro.sweep import (
    JobSpec,
    ResultCache,
    build_jobs,
    environment_fingerprint,
    expand_grid,
)

# -- strategies ---------------------------------------------------------------

# JSON-ish payloads as they appear in cached cell results.
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**40), 2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)

# Result-affecting SpadeConfig/environment perturbations: every field
# here feeds the environment fingerprint (orchestration knobs like
# ``jobs``/``cache_dir`` are deliberately absent).
env_perturbations = st.fixed_dictionaries(
    {
        "scale": st.sampled_from(["tiny", "small", "default"]),
        "num_pes": st.integers(1, 64),
        "opt_mode": st.sampled_from(["quick", "full"]),
        "cache_shrink": st.sampled_from([1.0, 8.0, 32.0]),
        "row_panel_divisor": st.sampled_from([1, 4, 8]),
    }
)

grid_axes = st.dictionaries(
    st.text(
        alphabet="abcdefgh", min_size=1, max_size=4
    ),
    st.lists(
        st.integers(0, 9) | st.sampled_from(["x", "y", "z"]),
        min_size=1,
        max_size=4,
        unique=True,
    ),
    min_size=1,
    max_size=3,
)


def make_env(fields) -> BenchEnvironment:
    return BenchEnvironment(**fields)


# -- grid expansion -----------------------------------------------------------

class TestExpandGrid:
    @given(axes=grid_axes)
    def test_matches_nested_loop_order(self, axes):
        """Odometer order == the serial for-loop nesting it replaces."""
        expected = list(itertools.product(*axes.values()))
        assert expand_grid(axes) == expected

    @given(axes=grid_axes)
    def test_deterministic_function_of_spec(self, axes):
        assert expand_grid(axes) == expand_grid(dict(axes))

    @given(axes=grid_axes)
    def test_covers_full_product_exactly_once(self, axes):
        points = expand_grid(axes)
        assert len(points) == len(set(points))
        expected_size = 1
        for pool in axes.values():
            expected_size *= len(pool)
        assert len(points) == expected_size


# -- job keys -----------------------------------------------------------------

class TestJobKeys:
    @given(
        envs=st.lists(env_perturbations, min_size=1, max_size=4,
                      unique_by=lambda d: tuple(sorted(d.items()))),
        points=st.lists(
            st.tuples(st.sampled_from(["KRO", "DEL"]),
                      st.sampled_from([32, 128])),
            min_size=1, max_size=4, unique=True,
        ),
    )
    def test_injective_over_env_and_point_grid(self, envs, points):
        """Distinct (environment, point) pairs get distinct keys; the
        key is a pure function of content, not identity or position."""
        keys = {}
        for fields in envs:
            env = make_env(fields)
            for spec in build_jobs("fig09", env, points):
                identity = (tuple(sorted(fields.items())), spec.point)
                key = spec.key
                assert keys.setdefault(key, identity) == identity, (
                    "key collision between distinct jobs"
                )
        assert len(keys) == len(envs) * len(points)

    @given(fields=env_perturbations,
           point=st.tuples(st.integers(0, 5), st.integers(0, 5)))
    def test_key_independent_of_grid_index(self, fields, point):
        env = make_env(fields)
        a = JobSpec(driver="d", index=0, point=point,
                    config_hash=environment_fingerprint(env))
        b = JobSpec(driver="d", index=7, point=point,
                    config_hash=environment_fingerprint(env))
        assert a.key == b.key and a.seed == b.seed

    @given(fields=env_perturbations,
           jobs=st.integers(1, 8),
           timeout=st.none() | st.floats(1, 100, allow_nan=False))
    def test_orchestration_knobs_do_not_key(self, fields, jobs, timeout):
        base = make_env(fields)
        knobbed = dataclasses.replace(
            base, jobs=jobs, timeout_s=timeout, cache_dir="/tmp/any",
            max_retries=3,
        )
        assert environment_fingerprint(base) == \
            environment_fingerprint(knobbed)

    @given(fields=env_perturbations)
    def test_result_affecting_fields_do_key(self, fields):
        base = make_env(fields)
        bumped = dataclasses.replace(base, num_pes=base.num_pes + 1)
        assert environment_fingerprint(base) != \
            environment_fingerprint(bumped)


# -- result cache -------------------------------------------------------------

class TestCacheRoundTrip:
    @given(payload=json_values)
    @settings(max_examples=40, deadline=None)
    def test_round_trips_arbitrary_payloads(self, payload, tmp_path_factory):
        cache = ResultCache(tmp_path_factory.mktemp("cache"))
        key = "ab" + "0" * 62
        hit, _ = cache.get(key)
        assert not hit
        cache.put(key, payload)
        hit, value = cache.get(key)
        assert hit and value == payload

    @given(payloads=st.lists(json_values, min_size=2, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_concurrent_writers_never_corrupt(
        self, payloads, tmp_path_factory
    ):
        """N writers racing on one key: the surviving entry is some
        writer's payload, intact — never interleaved bytes."""
        cache = ResultCache(tmp_path_factory.mktemp("cache"))
        key = "cd" + "1" * 62
        with ThreadPoolExecutor(max_workers=len(payloads)) as pool:
            list(pool.map(lambda p: cache.put(key, p), payloads))
        hit, value = cache.get(key)
        assert hit
        assert any(value == p for p in payloads)

    @given(
        entries=st.dictionaries(
            st.text(alphabet="0123456789abcdef", min_size=64, max_size=64),
            json_values,
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_concurrent_writers_distinct_keys(
        self, entries, tmp_path_factory
    ):
        cache = ResultCache(tmp_path_factory.mktemp("cache"))
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(
                lambda kv: cache.put(kv[0], kv[1]), entries.items()
            ))
        assert len(cache) == len(entries)
        for key, payload in entries.items():
            hit, value = cache.get(key)
            assert hit and value == payload
