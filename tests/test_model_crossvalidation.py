"""Cross-validation: the analytic timing model vs the cycle-level
micro-simulator.

The engine's analytic latency-tolerance model (repro.core.timing) and
the cycle-driven pipeline (repro.core.microsim) abstract the same
hardware at different fidelities.  They will not agree on absolute
cycles, but they must agree on every *direction* the paper's Figure 10
analysis rests on; these tests pin that agreement.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import PEConfig, scaled_config
from repro.core.microsim import PEMicroSimulator
from repro.core.pe import PECounters
from repro.core.timing import pe_time_ns
from repro.memory.hierarchy import MemorySystem, ServiceLevel


@pytest.fixture(scope="module")
def tile():
    rng = np.random.default_rng(11)
    n = 400
    return (
        rng.integers(0, 64, n),
        rng.integers(0, 64, n),
        rng.random(n).astype(np.float32),
    )


def micro_cycles(tile, pe_config, latency):
    sim = PEMicroSimulator(pe_config, memory_latency_cycles=latency)
    return sim.run_tile(*tile).cycles


def analytic_time(
    pe_config, link_latency_ns, dram_reads=1000, sparse_lines=75
):
    cfg = scaled_config(1)
    cfg = replace(
        cfg,
        pe=pe_config,
        memory=replace(cfg.memory, link_latency_ns=link_latency_ns),
    )
    counters = PECounters(tops=400, vops=800)
    counters.dense_reads_by_level[ServiceLevel.DRAM] = dram_reads
    counters.sparse_by_level[ServiceLevel.DRAM] = sparse_lines
    return pe_time_ns(counters, cfg, MemorySystem(cfg))


class TestDirectionalAgreement:
    def test_latency_hurts_in_both_models(self, tile):
        pe = PEConfig()
        micro_ratio = micro_cycles(tile, pe, 400) / micro_cycles(
            tile, pe, 100
        )
        analytic_ratio = analytic_time(pe, 960.0) / analytic_time(pe, 60.0)
        assert micro_ratio > 1.2
        assert analytic_ratio > 1.2

    def test_rs_capacity_helps_in_both_models(self, tile):
        small = replace(PEConfig(), vop_rs_entries=4)
        big = replace(PEConfig(), vop_rs_entries=32)
        assert micro_cycles(tile, big, 200) < micro_cycles(
            tile, small, 200
        )
        assert analytic_time(big, 480.0) < analytic_time(small, 480.0)

    def test_rs_benefit_grows_with_latency_in_both(self, tile):
        """The central Figure 10 interaction: queue capacity matters
        more when memory is farther away."""
        small = replace(PEConfig(), vop_rs_entries=8)
        big = replace(PEConfig(), vop_rs_entries=32)

        micro_gain_low = micro_cycles(tile, small, 50) / micro_cycles(
            tile, big, 50
        )
        micro_gain_high = micro_cycles(tile, small, 400) / micro_cycles(
            tile, big, 400
        )
        assert micro_gain_high >= micro_gain_low * 0.95

        analytic_gain_low = analytic_time(small, 60.0) / analytic_time(
            big, 60.0
        )
        analytic_gain_high = analytic_time(small, 960.0) / analytic_time(
            big, 960.0
        )
        assert analytic_gain_high >= analytic_gain_low * 0.95

    def test_compute_floor_in_both(self, tile):
        """With near-zero memory latency, time approaches the issue
        floor of one vOp per cycle."""
        pe = PEConfig()
        n_vops = len(tile[0]) * 2
        cycles = micro_cycles(tile, pe, 1)
        assert cycles < 4 * n_vops  # within a small factor of the floor

        t = analytic_time(pe, 0.0, dram_reads=0, sparse_lines=0)
        floor_ns = 800 * pe.cycle_ns
        assert t == pytest.approx(floor_ns)


class TestAnalyticConsistency:
    def test_time_monotone_in_traffic(self):
        pe = PEConfig()
        t_small = analytic_time(pe, 60.0, dram_reads=100)
        t_big = analytic_time(pe, 60.0, dram_reads=100_000)
        assert t_big > t_small

    def test_time_insensitive_to_hits(self):
        """L1 hits are nearly free compared to DRAM misses."""
        cfg = scaled_config(1)
        mem = MemorySystem(cfg)
        hits = PECounters(tops=10, vops=20)
        hits.dense_reads_by_level[ServiceLevel.L1] = 10_000
        misses = PECounters(tops=10, vops=20)
        misses.dense_reads_by_level[ServiceLevel.DRAM] = 10_000
        assert pe_time_ns(hits, cfg, mem) < pe_time_ns(misses, cfg, mem) / 10
