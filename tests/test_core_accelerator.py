"""Integration tests: the full SPADE system against the golden kernels.

Every (settings, kernel) combination must produce the numerically exact
result — the flexibility knobs change performance, never the answer.
"""

import numpy as np
import pytest

from repro import KernelSettings, SpadeSystem, sddmm_output_to_coo
from repro.core.instructions import Primitive
from repro.kernels import sddmm_reference, spmm_reference
from repro.sparse.tiled import tile_matrix

SETTINGS_GRID = [
    KernelSettings(),
    KernelSettings(row_panel_size=16, col_panel_size=32),
    KernelSettings(row_panel_size=16, col_panel_size=32, use_barriers=True),
    KernelSettings(rmatrix_bypass=True),
    KernelSettings(
        row_panel_size=8, col_panel_size=16,
        rmatrix_bypass=True, use_barriers=True,
    ),
    KernelSettings(sparse_stream_bypass=False, sddmm_output_bypass=False),
]


class TestSpMMCorrectness:
    @pytest.mark.parametrize("settings", SETTINGS_GRID)
    def test_matches_reference(
        self, small_system, small_graph, dense_b_factory, settings
    ):
        b = dense_b_factory(small_graph.num_cols, 32)
        report = small_system.spmm(small_graph, b, settings)
        expected = spmm_reference(small_graph, b)
        np.testing.assert_allclose(
            report.output, expected, rtol=1e-4, atol=1e-4
        )

    def test_rectangular_matrix(
        self, small_system, random_rect, dense_b_factory
    ):
        b = dense_b_factory(random_rect.num_cols, 16)
        report = small_system.spmm(random_rect, b)
        np.testing.assert_allclose(
            report.output, spmm_reference(random_rect, b),
            rtol=1e-4, atol=1e-4,
        )

    @pytest.mark.parametrize("k", [16, 32, 64, 128])
    def test_various_k(self, small_system, tiny_matrix, dense_b_factory, k):
        b = dense_b_factory(tiny_matrix.num_cols, k)
        report = small_system.spmm(tiny_matrix, b)
        np.testing.assert_allclose(
            report.output, spmm_reference(tiny_matrix, b), rtol=1e-4
        )

    def test_k_not_multiple_of_line_is_padded(
        self, small_system, tiny_matrix, dense_b_factory
    ):
        b = dense_b_factory(tiny_matrix.num_cols, 20)  # pads to 2 lines
        report = small_system.spmm(tiny_matrix, b)
        np.testing.assert_allclose(
            report.output, spmm_reference(tiny_matrix, b), rtol=1e-4
        )

    def test_shape_validation(self, small_system, tiny_matrix):
        with pytest.raises(ValueError, match="B must be"):
            small_system.spmm(
                tiny_matrix, np.ones((99, 8), dtype=np.float32)
            )


class TestSDDMMCorrectness:
    @pytest.mark.parametrize("settings", SETTINGS_GRID)
    def test_matches_reference(
        self, small_system, small_graph, dense_b_factory, settings
    ):
        b = dense_b_factory(small_graph.num_rows, 32, seed=1)
        c = dense_b_factory(small_graph.num_cols, 32, seed=2)
        report = small_system.sddmm(small_graph, b, c, settings)
        tiled = tile_matrix(
            small_graph, settings.row_panel_size, settings.col_panel_size
        )
        got = sddmm_output_to_coo(tiled, report.output)
        assert got == sddmm_reference(small_graph, b, c)

    def test_shape_validation(self, small_system, random_rect):
        b_bad = np.ones((random_rect.num_rows + 1, 8), dtype=np.float32)
        c = np.ones((random_rect.num_cols, 8), dtype=np.float32)
        with pytest.raises(ValueError, match="B must be"):
            small_system.sddmm(random_rect, b_bad, c)

    def test_k_mismatch(self, small_system, random_rect):
        b = np.ones((random_rect.num_rows, 8), dtype=np.float32)
        c = np.ones((random_rect.num_cols, 16), dtype=np.float32)
        with pytest.raises(ValueError, match="row size K"):
            small_system.sddmm(random_rect, b, c)


class TestExecutionReport:
    def test_report_fields_populated(
        self, small_system, small_graph, dense_b_factory
    ):
        b = dense_b_factory(small_graph.num_cols, 32)
        rep = small_system.spmm(small_graph, b)
        assert rep.time_ns > 0
        assert rep.time_ms == pytest.approx(rep.time_ns / 1e6)
        assert rep.dram_accesses > 0
        assert rep.requests_per_cycle > 0
        assert 0 < rep.bandwidth_utilization <= 1.0
        assert rep.load_imbalance >= 1.0
        assert rep.result.primitive is Primitive.SPMM

    def test_sparse_stream_traffic_accounted(
        self, small_system, small_graph, dense_b_factory
    ):
        b = dense_b_factory(small_graph.num_cols, 32)
        rep = small_system.spmm(small_graph, b)
        assert rep.stats.by_region.get("sparse", 0) > 0
        assert rep.counters.sparse_line_reads > 0

    def test_tops_equal_nnz_and_vops_scale_with_k(
        self, small_system, small_graph, dense_b_factory
    ):
        b32 = dense_b_factory(small_graph.num_cols, 32)
        b64 = dense_b_factory(small_graph.num_cols, 64)
        r32 = small_system.spmm(small_graph, b32)
        r64 = small_system.spmm(small_graph, b64)
        assert r32.counters.tops == small_graph.nnz
        assert r32.counters.vops == small_graph.nnz * 2  # K=32 -> 2 lines
        assert r64.counters.vops == small_graph.nnz * 4

    def test_barriers_produce_multiple_epochs(
        self, small_system, small_graph, dense_b_factory
    ):
        b = dense_b_factory(small_graph.num_cols, 32)
        rep = small_system.spmm(
            small_graph, b,
            KernelSettings(
                row_panel_size=16, col_panel_size=16, use_barriers=True
            ),
        )
        assert len(rep.result.epoch_timings) > 1
        total = sum(e.epoch_time_ns for e in rep.result.epoch_timings)
        assert rep.time_ns == pytest.approx(
            total + rep.result.termination_ns
        )


class TestBypassBehaviour:
    def test_rmatrix_bypass_avoids_cache_pollution(
        self, small_system, small_graph, dense_b_factory
    ):
        b = dense_b_factory(small_graph.num_cols, 32)
        cached = small_system.spmm(small_graph, b, KernelSettings())
        bypassed = small_system.spmm(
            small_graph, b, KernelSettings(rmatrix_bypass=True)
        )
        # Bypassed rMatrix lines go through the victim cache instead.
        assert bypassed.stats.victim.accesses > 0
        assert cached.stats.victim.accesses == 0
        assert (
            bypassed.stats.l1.accesses < cached.stats.l1.accesses
        )

    def test_sparse_cache_pollution_without_bypass(
        self, small_system, small_graph, dense_b_factory
    ):
        """Pre-CFG4 behaviour: the sparse stream occupies the caches."""
        b = dense_b_factory(small_graph.num_cols, 32)
        no_bypass = small_system.spmm(
            small_graph, b, KernelSettings(sparse_stream_bypass=False)
        )
        with_bypass = small_system.spmm(small_graph, b, KernelSettings())
        assert (
            no_bypass.stats.l1.accesses > with_bypass.stats.l1.accesses
        )
        assert with_bypass.stats.bbf_stream.accesses > 0


class TestScaledSystems:
    def test_more_pes_not_slower(self, small_graph, dense_b_factory):
        b = dense_b_factory(small_graph.num_cols, 32)
        times = []
        for pes in (2, 8):
            system = SpadeSystem.scaled(pes)
            times.append(system.spmm(small_graph, b).time_ns)
        assert times[1] < times[0]

    def test_spade2_config_scales_resources(self):
        s1 = SpadeSystem.scaled(8).config
        s2 = s1.scaled(2)
        assert s2.num_pes == 16
        assert s2.memory.dram_achievable_gbps == pytest.approx(
            2 * s1.memory.dram_achievable_gbps
        )
        assert s2.memory.num_llc_slices == 2 * s1.memory.num_llc_slices
        assert s2.memory.link_latency_ns == 2 * s1.memory.link_latency_ns
