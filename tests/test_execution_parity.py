"""Differential parity: vectorized/pipelined execution vs the scalar oracle.

The vectorized backend derives the post-VRF trace with NumPy plus
protected-run elision, and the pipelined backend additionally overlaps
generation with replay.  Both must be *bit-identical* to the scalar
per-nonzero oracle on every observable: the emitted trace (content and
order), numeric outputs, simulated time, AccessStats, per-epoch
PECounters, and the VRF's own hit/miss/writeback counters (elision
bulk-credits skipped hits, so these pin that accounting too).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np
import pytest

from repro.config import PipelineConfig, scaled_config
from repro.core.accelerator import KernelSettings, SpadeSystem
from repro.core.bypass import BypassPolicy
from repro.core.cpe import ScheduleParams
from repro.core.engine import Engine
from repro.core.instructions import Primitive
from repro.memory.hierarchy import TRACE_REGIONS, MemorySystem
from repro.sparse.generators import rmat_graph, uniform_random
from repro.sparse.tiled import tile_matrix

MODES = ("vectorized", "pipelined")


def _run_engine(
    a,
    k: int,
    kernel: str,
    execution: str,
    replay: str,
    settings: Optional[KernelSettings] = None,
    chunk_nnz: int = 256,
    pipeline: Optional[PipelineConfig] = None,
):
    """Build an Engine directly (so PEs stay reachable) and run once."""
    cfg = dataclasses.replace(
        scaled_config(4, cache_shrink=8), execution=execution, replay=replay
    )
    if pipeline is not None:
        cfg = dataclasses.replace(cfg, pipeline=pipeline)
    settings = settings or KernelSettings.base()
    system = SpadeSystem(cfg, chunk_nnz=chunk_nnz)
    tiled = tile_matrix(
        a, settings.row_panel_size, settings.col_panel_size
    )
    prim = Primitive.SPMM if kernel == "spmm" else Primitive.SDDMM
    amap = system._build_address_map(tiled, k, prim)
    init = system.cpe.make_initialization(
        prim,
        amap,
        rmatrix_bypass=settings.rmatrix_bypass,
        cmatrix_bypass=False,
        dense_row_size=k,
    )
    policy = BypassPolicy(
        rmatrix_bypass=settings.rmatrix_bypass,
        sparse_stream_bypass=settings.sparse_stream_bypass,
        sddmm_output_bypass=settings.sddmm_output_bypass,
    )
    schedule = system.cpe.build_schedule(
        tiled,
        ScheduleParams(
            use_barriers=settings.use_barriers,
            barrier_group_cols=settings.barrier_group_cols,
        ),
    )
    engine = Engine(cfg, tiled, init, amap, policy, chunk_nnz)
    engine.bind_schedule(schedule)
    rng = np.random.default_rng(7)
    if kernel == "spmm":
        b = rng.random((a.num_cols, k), dtype=np.float32)
        result = engine.run_spmm(schedule, b)
        out = result.output_dense
    else:
        b = rng.random((a.num_rows, k), dtype=np.float32)
        c = rng.random((a.num_cols, k), dtype=np.float32)
        result = engine.run_sddmm(schedule, b, c)
        out = result.output_vals
    return engine, result, out


def _fingerprint(engine: Engine, result, out):
    return {
        "time_ns": result.time_ns,
        "stats": dataclasses.asdict(result.stats),
        "counters": result.counters,
        "epoch_counters": engine._epoch_counters,
        "vrf": [
            (
                pe.vrf.tag_hits,
                pe.vrf.tag_misses,
                pe.vrf.evictions,
                pe.vrf.manager_writebacks,
                pe.vrf.eviction_writebacks,
            )
            for pe in engine.pes
        ],
    }


def _assert_same(a, k, kernel, replay, settings=None, chunk_nnz=256):
    eng_o, res_o, out_o = _run_engine(
        a, k, kernel, "scalar", replay, settings, chunk_nnz
    )
    fp_o = _fingerprint(eng_o, res_o, out_o)
    for mode in MODES:
        eng_m, res_m, out_m = _run_engine(
            a, k, kernel, mode, replay, settings, chunk_nnz
        )
        assert np.array_equal(out_o, out_m), f"{mode}: output diverged"
        assert _fingerprint(eng_m, res_m, out_m) == fp_o, (
            f"{mode}: state fingerprint diverged"
        )


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=8, edge_factor=8, seed=42)


@pytest.fixture(scope="module")
def rect():
    return uniform_random(num_rows=256, num_cols=192, nnz=6_000, seed=13)


class TestExecutionParity:
    @pytest.mark.parametrize("replay", ["scalar", "batched"])
    @pytest.mark.parametrize("kernel", ["spmm", "sddmm"])
    def test_modes_bit_identical(self, graph, kernel, replay):
        _assert_same(graph, 16, kernel, replay)

    def test_rmatrix_bypass(self, rect):
        _assert_same(
            rect, 16, "spmm", "batched",
            KernelSettings(rmatrix_bypass=True),
        )

    def test_cached_sparse_stream(self, rect):
        # Pre-CFG4 sparse path: the stream goes through the caches, so
        # the sparse ops take the dense-cached branch of the generators.
        _assert_same(
            rect, 16, "sddmm", "batched",
            KernelSettings(sparse_stream_bypass=False),
        )

    def test_sddmm_output_through_caches(self, rect):
        _assert_same(
            rect, 16, "sddmm", "scalar",
            KernelSettings(sddmm_output_bypass=False),
        )

    def test_barrier_epochs(self, graph):
        _assert_same(
            graph, 16, "spmm", "batched",
            KernelSettings(
                row_panel_size=64, col_panel_size=64, use_barriers=True
            ),
        )

    def test_wide_rows_disable_elision(self, rect):
        # K=256 -> 16 lines/row: the elision cadence degenerates to 1
        # (the VRF cannot protect a run), so the generators must fall
        # back to streaming every access and still match the oracle.
        _assert_same(rect, 256, "spmm", "batched")
        _assert_same(rect, 256, "sddmm", "batched")

    def test_tiny_chunks(self, rect):
        # chunk_nnz smaller than typical row runs: runs split across
        # chunk boundaries exercise the first/last-touch rules.
        _assert_same(rect, 16, "spmm", "batched", chunk_nnz=17)


class TestPipelineVariants:
    @pytest.mark.parametrize(
        "pipeline",
        [
            PipelineConfig(lookahead=1, pool="thread", workers=1),
            PipelineConfig(lookahead=4, pool="thread", workers=4),
            PipelineConfig(lookahead=1, pool="serial"),
            PipelineConfig(lookahead=3, pool="serial"),
        ],
        ids=["thread-la1", "thread-la4", "serial-la1", "serial-la3"],
    )
    def test_pipeline_config_parity(self, graph, pipeline):
        eng_o, res_o, out_o = _run_engine(
            graph, 16, "sddmm", "scalar", "batched"
        )
        fp_o = _fingerprint(eng_o, res_o, out_o)
        eng_p, res_p, out_p = _run_engine(
            graph, 16, "sddmm", "pipelined", "batched", pipeline=pipeline
        )
        assert np.array_equal(out_o, out_p)
        assert _fingerprint(eng_p, res_p, out_p) == fp_o


class TestTraceParity:
    """The traces themselves — content *and* order — must match."""

    @staticmethod
    def _capture_chunks(monkeypatch):
        chunks: List = []
        orig = MemorySystem.replay_trace

        def cap(self, pe_id, lines, ops, region_names=TRACE_REGIONS):
            chunks.append(
                (pe_id, np.array(lines).tolist(), np.array(ops).tolist())
            )
            return orig(self, pe_id, lines, ops, region_names)

        monkeypatch.setattr(MemorySystem, "replay_trace", cap)
        return chunks

    @staticmethod
    def _capture_accesses(monkeypatch):
        calls: List = []
        d_orig = MemorySystem.dense_access
        s_orig = MemorySystem.stream_access

        def dense(self, pe_id, line, is_write=False, bypass=False,
                  region=None):
            calls.append(
                ("dense", pe_id, line, bool(is_write), bool(bypass), region)
            )
            return d_orig(self, pe_id, line, is_write, bypass, region)

        def stream(self, pe_id, line, is_write=False, region=None):
            calls.append(("stream", pe_id, line, bool(is_write), region))
            return s_orig(self, pe_id, line, is_write, region)

        monkeypatch.setattr(MemorySystem, "dense_access", dense)
        monkeypatch.setattr(MemorySystem, "stream_access", stream)
        return calls

    @staticmethod
    def _flatten(chunks) -> List:
        # The fused drivers may merge consecutive same-PE replay calls
        # into one (coalesced dispatch), so per-call boundaries are not
        # an observable.  The per-access (pe_id, line, op) sequence in
        # call order *is*: shared levels (L2/STLB/LLC/DRAM) see exactly
        # this interleaving, so it must match the oracle bit-for-bit.
        flat: List = []
        for pe_id, lines, ops in chunks:
            flat.extend(zip([pe_id] * len(lines), lines, ops))
        return flat

    @pytest.mark.parametrize("kernel", ["spmm", "sddmm"])
    def test_batched_chunk_stream_identical(
        self, graph, kernel, monkeypatch
    ):
        streams = {}
        for mode in ("scalar",) + MODES:
            with monkeypatch.context() as mp:
                chunks = self._capture_chunks(mp)
                _run_engine(graph, 16, kernel, mode, "batched")
                streams[mode] = self._flatten(chunks)
        for mode in MODES:
            assert streams[mode] == streams["scalar"], (
                f"{mode}: replay access stream diverged"
            )

    @pytest.mark.parametrize("kernel", ["spmm", "sddmm"])
    def test_scalar_replay_access_stream_identical(
        self, rect, kernel, monkeypatch
    ):
        # With replay="scalar" the oracle issues accesses directly while
        # the vectorized backends flush their derived trace through
        # replay_trace_scalar — the resulting per-access call sequences
        # must be indistinguishable.
        streams = {}
        for mode in ("scalar",) + MODES:
            with monkeypatch.context() as mp:
                calls = self._capture_accesses(mp)
                _run_engine(rect, 16, kernel, mode, "scalar")
                streams[mode] = calls
        for mode in MODES:
            assert streams[mode] == streams["scalar"], (
                f"{mode}: access stream diverged"
            )
