"""Content-addressed epoch-trace store: unit, parity and property tests.

Pins the PR 8 trace-cache contract:

- store round trips, corrupt entries self-evict as misses (unit tests);
- a warm run replays with **zero generation invocations** and is
  bit-identical to the cold run and to a store-free run (parity);
- the key deliberately excludes cache geometry, replay backend and
  execution mode, so entries populated under one geometry are hits
  under any other and results still match live generation exactly
  (Hypothesis property — the invariance DESIGN.md section 12 argues);
- kill-then-resume through a crash reproduces the uninterrupted run
  bit for bit with the trace cache attached on every attempt.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ResilienceConfig, scaled_config
from repro.core.accelerator import KernelSettings, SpadeSystem
from repro.memory.trace_store import (
    TraceStore,
    canonical_key,
    open_trace_store,
)
from repro.resilience import ChaosConfig, ChaosMonkey, InjectedCrash
from repro.sparse.generators import rmat_graph, uniform_random


def _workload(nnz: int = 30_000, num_rows: int = 1024, seed: int = 3):
    a = uniform_random(num_rows, 256, nnz=nnz, seed=seed)
    rng = np.random.default_rng(7)
    b = rng.random((a.num_rows, 16), dtype=np.float32)
    c = rng.random((a.num_cols, 16), dtype=np.float32)
    return a, b, c


def _run(a, b, c, store=None, execution="pipelined", replay="array",
         cache_shrink=8.0, chunk_nnz=8192):
    cfg = dataclasses.replace(
        scaled_config(4, cache_shrink=cache_shrink),
        execution=execution,
        replay=replay,
    )
    system = SpadeSystem(cfg, chunk_nnz=chunk_nnz, trace_store=store)
    report = system.sddmm(a, b, c)
    return report, dict(system.trace_cache)


def _facts(report):
    return (
        report.output.tobytes(),
        report.result.time_ns,
        dataclasses.asdict(report.stats),
        report.counters,
    )


class TestTraceStoreUnit:
    def _entry(self):
        return {
            "pes": [
                {
                    "lines": np.arange(5, dtype=np.int32),
                    "ops": np.zeros(5, dtype=np.int16),
                    "segs": [(0, 5)],
                }
            ]
        }

    def test_round_trip(self, tmp_path):
        store = TraceStore(tmp_path)
        key = canonical_key({"m": 1}, epoch=0)
        store.put(key, self._entry())
        hit, entry = store.get(key)
        assert hit
        np.testing.assert_array_equal(
            entry["pes"][0]["lines"], np.arange(5)
        )
        assert entry["pes"][0]["segs"] == [(0, 5)]
        assert store.hits == 1 and store.writes == 1
        assert store.keys() == [key]
        assert len(store) == 1

    def test_missing_key_is_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        hit, entry = store.get("ab" * 32)
        assert not hit and entry is None
        assert store.misses == 1

    def test_truncated_payload_evicts(self, tmp_path):
        store = TraceStore(tmp_path)
        key = canonical_key({"m": 2}, epoch=0)
        path = store.put(key, self._entry())
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:-7])
        hit, _ = store.get(key)
        assert not hit
        assert not list(
            p for p in [path] if __import__("os").path.exists(p)
        ), "corrupt entry was not evicted"
        # Next probe is a clean miss, not an error.
        assert store.get(key) == (False, None)

    def test_garbage_header_evicts(self, tmp_path):
        store = TraceStore(tmp_path)
        key = canonical_key({"m": 3}, epoch=0)
        path = store.put(key, self._entry())
        with open(path, "wb") as fh:
            fh.write(b"not json\ngarbage")
        assert store.get(key) == (False, None)

    def test_entry_under_wrong_key_evicts(self, tmp_path):
        import shutil

        store = TraceStore(tmp_path)
        key = canonical_key({"m": 4}, epoch=0)
        other = canonical_key({"m": 5}, epoch=0)
        path = store.put(key, self._entry())
        target = store.path_for(other)
        __import__("os").makedirs(
            __import__("os").path.dirname(target), exist_ok=True
        )
        shutil.copyfile(path, target)
        hit, _ = store.get(other)
        assert not hit, "foreign entry must not be served"

    def test_key_material_sensitivity(self):
        base = {"nnz": 10, "gen": {"num_pes": 4}}
        assert canonical_key(base, 0) != canonical_key(base, 1)
        changed = {"nnz": 11, "gen": {"num_pes": 4}}
        assert canonical_key(base, 0) != canonical_key(changed, 0)
        # Key ordering inside the material must not matter.
        reordered = {"gen": {"num_pes": 4}, "nnz": 10}
        assert canonical_key(base, 0) == canonical_key(reordered, 0)

    def test_open_trace_store_propagates_none(self, tmp_path):
        assert open_trace_store(None) is None
        assert open_trace_store("") is None
        store = open_trace_store(str(tmp_path / "s"))
        assert isinstance(store, TraceStore)


class TestEngineTraceCacheParity:
    @pytest.mark.parametrize("execution", ["vectorized", "pipelined"])
    def test_cold_warm_and_plain_bit_identical(self, tmp_path, execution):
        a, b, c = _workload()
        cold, cc = _run(a, b, c, TraceStore(tmp_path), execution)
        warm, cw = _run(a, b, c, TraceStore(tmp_path), execution)
        plain, _ = _run(a, b, c, None, execution)
        assert cc["misses"] >= 1 and cc["stored"] >= 1
        assert cc["gen_invocations"] > 0
        assert cw["gen_invocations"] == 0, cw
        assert cw["misses"] == 0 and cw["hits"] >= 1
        assert _facts(cold) == _facts(warm) == _facts(plain)

    def test_scalar_never_probes_the_store(self, tmp_path):
        a, b, c = _workload(nnz=5_000)
        store = TraceStore(tmp_path)
        _, cc = _run(a, b, c, store, execution="scalar")
        assert cc == {
            "hits": 0, "misses": 0, "stored": 0,
            "gen_invocations": 0, "fused_chunks": 0,
        }
        assert len(store) == 0

    def test_shared_across_execution_modes(self, tmp_path):
        a, b, c = _workload()
        cold, _ = _run(a, b, c, TraceStore(tmp_path), "pipelined")
        warm, cw = _run(a, b, c, TraceStore(tmp_path), "vectorized")
        assert cw["gen_invocations"] == 0 and cw["hits"] >= 1
        assert _facts(cold) == _facts(warm)

    def test_shared_across_replay_backends(self, tmp_path):
        a, b, c = _workload()
        cold, _ = _run(a, b, c, TraceStore(tmp_path), replay="array")
        warm, cw = _run(a, b, c, TraceStore(tmp_path), replay="batched")
        assert cw["gen_invocations"] == 0 and cw["hits"] >= 1
        assert _facts(cold) == _facts(warm)


class TestCacheGeometryInvariance:
    """The content-addressed key excludes cache geometry, so one
    geometry's entries serve every other geometry — and the replayed
    stats under geometry B match live generation under B exactly."""

    @settings(max_examples=6, deadline=None)
    @given(
        shrinks=st.lists(
            st.sampled_from([4.0, 8.0, 16.0, 32.0]),
            min_size=2, max_size=2, unique=True,
        ),
        nnz=st.sampled_from([4_000, 12_000]),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_entries_shared_across_cache_geometries(
        self, tmp_path_factory, shrinks, nnz, seed
    ):
        tmp_path = tmp_path_factory.mktemp("tcache")
        shrink_a, shrink_b = shrinks
        a, b, c = _workload(nnz=nnz, seed=seed)
        _run(a, b, c, TraceStore(tmp_path), cache_shrink=shrink_a)
        warm, cw = _run(
            a, b, c, TraceStore(tmp_path), cache_shrink=shrink_b
        )
        assert cw["gen_invocations"] == 0, (
            f"geometry {shrink_b} missed entries stored under "
            f"{shrink_a}: {cw}"
        )
        assert cw["misses"] == 0 and cw["hits"] >= 1
        live, _ = _run(a, b, c, None, cache_shrink=shrink_b)
        assert _facts(warm) == _facts(live), (
            "cached replay diverged from live generation under the "
            "second geometry"
        )


class TestKillResumeWithTraceCache:
    def test_crash_resume_with_trace_cache_bit_identical(self, tmp_path):
        a = rmat_graph(scale=8, seed=5)
        b = np.random.default_rng(0).random(
            (a.num_cols, 16), dtype=np.float32
        )
        settings_ = KernelSettings(
            row_panel_size=32, col_panel_size=64, use_barriers=True
        )
        base = scaled_config(4, cache_shrink=8)
        cache_dir = tmp_path / "trace-cache"
        ckpt_dir = tmp_path / "checkpoints"

        golden = SpadeSystem(
            base, trace_store=TraceStore(cache_dir)
        ).spmm(a, b, settings=settings_)
        n_epochs = len(golden.result.epoch_timings)
        assert n_epochs >= 3, f"need a multi-epoch run, got {n_epochs}"

        crashing = dataclasses.replace(
            base,
            resilience=ResilienceConfig(checkpoint_dir=str(ckpt_dir)),
        )
        monkey = ChaosMonkey(
            ChaosConfig(kill_after_epoch=n_epochs // 2)
        )
        crash_system = SpadeSystem(
            crashing, chaos=monkey, trace_store=TraceStore(cache_dir)
        )
        with pytest.raises(InjectedCrash):
            crash_system.spmm(a, b, settings=settings_)
        assert crash_system.trace_cache["gen_invocations"] == 0

        resumed_cfg = dataclasses.replace(
            base,
            resilience=ResilienceConfig(
                checkpoint_dir=str(ckpt_dir), resume=True
            ),
        )
        resume_system = SpadeSystem(
            resumed_cfg, trace_store=TraceStore(cache_dir)
        )
        resumed = resume_system.spmm(a, b, settings=settings_)
        assert resume_system.trace_cache["gen_invocations"] == 0
        assert resume_system.trace_cache["misses"] == 0
        assert np.array_equal(resumed.output, golden.output)
        assert resumed.result.time_ns == golden.result.time_ns
        assert dataclasses.asdict(resumed.stats) == dataclasses.asdict(
            golden.stats
        )
        assert resumed.counters == golden.counters
