"""Property-based tests (hypothesis) on service admission control.

The invariants the admission layer must hold under *any* request
pattern:

1. **No over-admission**: over any window, a tenant is admitted at most
   ``burst + rate * elapsed`` times (token conservation — the bucket
   cannot mint tokens).
2. **Queue bound**: queued + running executions never exceed
   ``max_queue`` (and never exceed the batch limit for batch traffic).
3. **Coalescing counts against exactly one execution**: however many
   requests join a key, exactly one is the leader, and leaders = the
   number of executions started.

Time is driven through the injectable clock, so every example is
deterministic and instant.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.service.admission import (
    AdmissionController,
    AdmissionPolicy,
    TokenBucket,
)
from repro.service.coalesce import Coalescer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# -- 1: the token bucket cannot over-admit ----------------------------------

bucket_params = st.tuples(
    st.floats(min_value=0.1, max_value=50.0),   # rate
    st.floats(min_value=1.0, max_value=50.0),   # burst
)
request_trace = st.lists(
    st.floats(min_value=0.0, max_value=5.0),    # inter-arrival gaps
    min_size=1, max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(params=bucket_params, gaps=request_trace)
def test_token_bucket_never_over_admits(params, gaps):
    rate, burst = params
    clock = FakeClock()
    bucket = TokenBucket(rate, burst, clock())
    admitted = 0
    elapsed = 0.0
    for gap in gaps:
        clock.advance(gap)
        elapsed += gap
        granted, retry_after = bucket.take(clock())
        if granted:
            admitted += 1
        else:
            assert retry_after > 0.0
        # Token conservation: what came out <= what was ever put in.
        ceiling = burst + rate * elapsed
        assert admitted <= math.floor(ceiling) + 1
        # The live balance can never exceed the burst capacity.
        assert bucket.tokens <= burst + 1e-9


@settings(max_examples=100, deadline=None)
@given(gaps=request_trace)
def test_retry_after_is_honest(gaps):
    # Waiting exactly the advertised Retry-After always yields a token.
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=2.0, now=clock())
    for gap in gaps:
        clock.advance(gap)
        granted, retry_after = bucket.take(clock())
        if not granted:
            clock.advance(retry_after + 1e-6)
            granted2, _ = bucket.take(clock())
            assert granted2


# -- 2: the queue bound holds under any admit/release interleaving ----------

ops = st.lists(
    st.tuples(
        st.sampled_from(["admit", "release"]),
        st.sampled_from(["interactive", "batch"]),
        st.integers(min_value=0, max_value=3),  # tenant id
    ),
    min_size=1, max_size=300,
)


@settings(max_examples=200, deadline=None)
@given(operations=ops, max_queue=st.integers(min_value=1, max_value=8),
       reserve=st.integers(min_value=0, max_value=4))
def test_in_system_never_exceeds_queue_bound(
    operations, max_queue, reserve
):
    clock = FakeClock()
    policy = AdmissionPolicy(
        max_queue=max_queue,
        interactive_reserve=min(reserve, max_queue),
        quota_rate=1e6, quota_burst=1e6,  # quota out of the way
    )
    ctrl = AdmissionController(policy, clock=clock)
    for op, priority, tenant in operations:
        clock.advance(0.001)
        if op == "admit":
            decision = ctrl.admit(f"t{tenant}", priority)
            if decision.ok and priority == "batch":
                assert ctrl.in_system <= policy.queue_limit("batch")
        else:
            if ctrl.in_system > 0:
                ctrl.release()
        assert 0 <= ctrl.in_system <= max_queue


@settings(max_examples=100, deadline=None)
@given(max_queue=st.integers(min_value=2, max_value=10),
       reserve=st.integers(min_value=1, max_value=5))
def test_interactive_reserve_blocks_batch_first(max_queue, reserve):
    reserve = min(reserve, max_queue - 1)
    clock = FakeClock()
    policy = AdmissionPolicy(
        max_queue=max_queue, interactive_reserve=reserve,
        quota_rate=1e6, quota_burst=1e6,
    )
    ctrl = AdmissionController(policy, clock=clock)
    batch_limit = policy.queue_limit("batch")
    # Fill to the batch limit with batch traffic...
    for _ in range(batch_limit):
        assert ctrl.admit("t", "batch").ok
    # ...the next batch request bounces (503), but interactive still
    # fits in the reserve.
    refused = ctrl.admit("t", "batch")
    assert not refused.ok and refused.code == 503
    assert refused.retry_after_s > 0
    assert ctrl.admit("t", "interactive").ok


# -- 3: coalescing admits N requests against exactly one execution ----------

key_traces = st.lists(
    st.integers(min_value=0, max_value=5),  # small key space -> overlap
    min_size=1, max_size=100,
)


@settings(max_examples=200, deadline=None)
@given(keys=key_traces)
def test_coalesced_requests_share_exactly_one_execution(keys):
    clock = FakeClock()
    ctrl = AdmissionController(
        AdmissionPolicy(max_queue=10**6, quota_rate=1e6,
                        quota_burst=1e6),
        clock=clock,
    )
    coalescer = Coalescer()
    executions = 0
    quota_charged = 0
    for key in keys:
        clock.advance(0.001)
        is_leader, entry = coalescer.join(f"k{key}")
        decision = ctrl.admit("tenant", needs_slot=is_leader)
        assert decision.ok
        quota_charged += 1
        if is_leader:
            executions += 1
    # Every request paid quota; only leaders consumed queue slots.
    assert quota_charged == len(keys)
    assert ctrl.in_system == executions
    assert executions == coalescer.in_flight
    assert executions == coalescer.stats()["leaders"]
    assert coalescer.stats()["coalesced"] == len(keys) - executions
    # Resolving a key retires it: a new join becomes a fresh leader.
    for key in set(keys):
        coalescer.resolve(f"k{key}", object())
        ctrl.release()
    assert coalescer.in_flight == 0
    assert ctrl.in_system == 0
    is_leader, _ = coalescer.join("k0")
    assert is_leader
