"""Golden agreement: telemetry metrics vs EngineResult/AccessStats.

The metrics registry is a *second reporting channel* for the same
counters the engine already returns.  These tests pin the contract that
the two channels agree exactly — per level, per DRAM direction, per
region — in BOTH replay modes, and that the default (telemetry off)
leaves the report bit-identical to an untelemetered run.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import TelemetryConfig, scaled_config
from repro.core.accelerator import SpadeSystem
from repro.sparse.generators import rmat_graph

LEVELS = ("l1", "l2", "llc", "victim", "bbf_stream")


def run_traced(replay: str, telemetry: TelemetryConfig):
    cfg = dataclasses.replace(
        scaled_config(4, cache_shrink=8),
        replay=replay, telemetry=telemetry,
    )
    system = SpadeSystem(cfg)
    a = rmat_graph(scale=7, edge_factor=8, seed=99)
    rng = np.random.default_rng(2024)
    b = rng.random((a.num_cols, 16), dtype=np.float32)
    return system, system.spmm(a, b)


@pytest.mark.parametrize("replay", ["scalar", "batched"])
class TestMetricsMatchStats:
    def test_level_counters_equal_access_stats(self, replay):
        system, report = run_traced(
            replay, TelemetryConfig(metrics=True)
        )
        m = system.telemetry.metrics
        stats = report.result.stats
        for level in LEVELS:
            s = getattr(stats, level)
            assert m.value(
                "spade_level_hits_total", level=level
            ) == s.hits, level
            assert m.value(
                "spade_level_misses_total", level=level
            ) == s.misses, level
            assert m.value(
                "spade_level_writebacks_total", level=level
            ) == s.writebacks, level

    def test_per_unit_counters_sum_to_aggregates(self, replay):
        system, report = run_traced(
            replay, TelemetryConfig(metrics=True)
        )
        m = system.telemetry.metrics
        stats = report.result.stats
        # Per-PE L1 series sum to the l1 aggregate.
        assert m.total(
            "spade_cache_hits_total", level="l1"
        ) == stats.l1.hits
        assert m.total(
            "spade_cache_misses_total", level="l1"
        ) == stats.l1.misses
        assert m.total(
            "spade_cache_hits_total", level="l2"
        ) == stats.l2.hits
        assert m.total(
            "spade_bbf_stream_hits_total"
        ) == stats.bbf_stream.hits
        assert m.total(
            "spade_stlb_misses_total"
        ) == stats.stlb_misses

    def test_dram_and_region_counters(self, replay):
        system, report = run_traced(
            replay, TelemetryConfig(metrics=True)
        )
        m = system.telemetry.metrics
        stats = report.result.stats
        assert m.value(
            "spade_dram_lines_total", op="read"
        ) == stats.dram_reads
        assert m.value(
            "spade_dram_lines_total", op="write"
        ) == stats.dram_writes
        assert stats.by_region  # non-trivial run
        for region, lines in stats.by_region.items():
            assert m.value(
                "spade_dram_region_lines_total", region=region
            ) == lines, region
        assert m.value(
            "spade_flushed_dirty_lines_total"
        ) == stats.flushed_dirty_lines

    def test_run_gauges_and_epochs(self, replay):
        system, report = run_traced(
            replay, TelemetryConfig(metrics=True)
        )
        m = system.telemetry.metrics
        result = report.result
        assert m.value("spade_epochs_total") == len(result.epoch_timings)
        assert m.value(
            "spade_epochs_total"
        ) == report.schedule.num_epochs
        assert m.value("spade_run_time_ns") == result.time_ns
        assert m.value(
            "spade_run_termination_ns"
        ) == result.termination_ns
        # Schedule-shape gauges published by the CPE.
        assert m.value(
            "spade_schedule_epochs"
        ) == report.schedule.num_epochs
        assert m.value("spade_schedule_tiles") > 0

    def test_trace_spans_cover_the_run(self, replay):
        system, report = run_traced(
            replay, TelemetryConfig(metrics=True, trace=True)
        )
        events = system.telemetry.tracer.events
        names = {e["name"] for e in events}
        assert "spmm" in names
        assert "build_schedule" in names
        assert "wb_invalidate" in names
        epochs = [
            e for e in events
            if e.get("cat") == "epoch" and e["ph"] == "X"
        ]
        assert len(epochs) == report.schedule.num_epochs
        barriers = [
            e for e in events
            if e.get("cat") == "epoch" and e["ph"] == "i"
        ]
        assert len(barriers) == report.schedule.num_epochs
        # Simulated time rides in args, not on the host timeline.
        assert all(
            "epoch_time_ns" in b["args"] for b in barriers
        )


class TestReplayBatchHistogram:
    def test_populated_only_in_batched_mode(self):
        sys_s, _ = run_traced("scalar", TelemetryConfig(metrics=True))
        sys_b, _ = run_traced("batched", TelemetryConfig(metrics=True))
        scalar_obs = sum(
            s.value
            for s in sys_s.telemetry.metrics.samples()
            if s.name == "spade_replay_batch_accesses"
        )
        batched = [
            s for s in sys_b.telemetry.metrics.samples()
            if s.name == "spade_replay_batch_accesses"
        ]
        assert scalar_obs == 0  # flush_trace no-ops in scalar mode
        assert batched, "batched mode must record chunk sizes"


class TestDisabledByDefault:
    def test_default_config_records_nothing(self):
        system, report = run_traced("batched", TelemetryConfig())
        assert not system.telemetry.enabled
        assert len(system.telemetry.metrics) == 0
        assert system.telemetry.tracer.events == []
        # ...and the measured result is identical to a metered run.
        sys_on, rep_on = run_traced(
            "batched", TelemetryConfig(metrics=True, trace=True)
        )
        assert report.result.time_ns == rep_on.result.time_ns
        assert dataclasses.asdict(
            report.result.stats
        ) == dataclasses.asdict(rep_on.result.stats)
        np.testing.assert_array_equal(
            report.result.output_dense, rep_on.result.output_dense
        )
