"""Unit tests for the CPE <-> PE instruction protocol (Section 4.1)."""

import pytest

from repro.core.cpe import ControlProcessor, ScheduleParams
from repro.core.instructions import (
    InitializationInstruction,
    Primitive,
    TerminationInstruction,
    TileInstruction,
    WBInvalidateInstruction,
)
from repro.core.program import (
    InputRegisterFile,
    ProgramRunner,
    ProtocolError,
)
from repro.sparse.tiled import tile_matrix


def make_init():
    return InitializationInstruction(
        primitive=Primitive.SPMM,
        rmatrix_base=0x1000,
        cmatrix_base=0x2000,
        sparse_r_ids_base=0x3000,
        sparse_c_ids_base=0x4000,
        sparse_vals_base=0x5000,
        sparse_out_vals_base=0,
        rmatrix_bypass=False,
        cmatrix_bypass=False,
        sizeof_indices=4,
        sizeof_vals=4,
        dense_row_size=32,
    )


class TestInputRegisters:
    def test_write_then_read(self):
        regs = InputRegisterFile(2)
        instr = TileInstruction(0, 0, 5)
        regs.cpe_write(instr)
        assert regs.occupied == 1
        assert regs.pe_read() is instr
        assert regs.occupied == 0

    def test_read_empty_returns_none(self):
        assert InputRegisterFile(2).pe_read() is None

    def test_overflow_is_a_protocol_error(self):
        regs = InputRegisterFile(1)
        regs.cpe_write(TileInstruction(0, 0, 1))
        with pytest.raises(ProtocolError, match="full"):
            regs.cpe_write(TileInstruction(1, 0, 1))

    def test_fifo_order(self):
        regs = InputRegisterFile(3)
        a, b = TileInstruction(0, 0, 1), TileInstruction(1, 0, 1)
        regs.cpe_write(a)
        regs.cpe_write(b)
        assert regs.pe_read() is a
        assert regs.pe_read() is b

    def test_notification_per_write(self):
        regs = InputRegisterFile(4)
        regs.cpe_write(TileInstruction(0, 0, 1))
        regs.cpe_write(TileInstruction(1, 0, 1))
        assert regs.notifications == 2

    def test_requires_registers(self):
        with pytest.raises(ValueError):
            InputRegisterFile(0)


class TestProgramRunner:
    @pytest.fixture()
    def schedule(self, small_graph):
        tiled = tile_matrix(small_graph, 16, 32)
        return ControlProcessor(3).build_schedule(
            tiled, ScheduleParams(use_barriers=True)
        )

    def test_full_section_completes(self, schedule):
        runner = ProgramRunner(num_pes=3)
        trace = runner.run(schedule, make_init())
        assert trace.tiles_delivered == schedule.num_tiles
        assert all(s.terminated for s in runner.pes)
        assert all(s.wb_invalidated for s in runner.pes)

    def test_barriers_crossed(self, schedule):
        runner = ProgramRunner(num_pes=3)
        trace = runner.run(schedule, make_init())
        assert trace.barriers_crossed == schedule.num_epochs - 1

    def test_no_barriers_single_epoch(self, small_graph):
        tiled = tile_matrix(small_graph, 16, None)
        schedule = ControlProcessor(2).build_schedule(tiled)
        trace = ProgramRunner(num_pes=2).run(schedule, make_init())
        assert trace.barriers_crossed == 0
        assert trace.tiles_delivered == schedule.num_tiles

    def test_protocol_traffic_negligible(self, schedule, small_graph):
        """The tile-grained ISA makes instruction delivery tiny
        relative to the data the tiles move (the paper's rationale for
        coarse instructions)."""
        runner = ProgramRunner(num_pes=3)
        trace = runner.run(schedule, make_init())
        data_bytes = small_graph.nnz * 12
        assert trace.bytes_on_wire() < data_bytes / 4

    def test_single_register_still_completes(self, schedule):
        """Even with one Input register per PE, the handshake makes
        progress (each read frees the slot for the next write)."""
        runner = ProgramRunner(num_pes=3, input_registers=1)
        trace = runner.run(schedule, make_init())
        assert trace.tiles_delivered == schedule.num_tiles

    def test_tile_before_init_rejected(self):
        runner = ProgramRunner(num_pes=1)
        state = runner.pes[0]
        with pytest.raises(ProtocolError, match="before Initialization"):
            runner._execute(0, state, TileInstruction(0, 0, 1))

    def test_termination_requires_wbinvalidate(self):
        runner = ProgramRunner(num_pes=1)
        state = runner.pes[0]
        runner._execute(0, state, make_init())
        with pytest.raises(ProtocolError, match="WB&Invalidate"):
            runner._execute(0, state, TerminationInstruction())

    def test_work_after_termination_rejected(self):
        runner = ProgramRunner(num_pes=1)
        state = runner.pes[0]
        runner._execute(0, state, make_init())
        runner._execute(0, state, WBInvalidateInstruction())
        runner._execute(0, state, TerminationInstruction())
        with pytest.raises(ProtocolError, match="after Termination"):
            runner._execute(0, state, TileInstruction(0, 0, 1))
