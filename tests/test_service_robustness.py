"""Chaos tests: the service survives SIGKILLed workers mid-request.

Reuses the sweep ChaosMonkey's deterministic ``sweep_kills`` schedule —
every service job has grid index 0, so ``((0, 1),)`` kills the first
attempt of whatever executes first, exercising the sentinel-detected
death -> lease attempt bump -> requeue ladder under a live request.
When every attempt dies, the job is quarantined and the HTTP answer is
a 503 carrying the quarantine manifest path.
"""

import pytest

from repro.obs.ledger import RunLedger, read_events
from repro.resilience import ChaosConfig
from repro.service.admission import AdmissionPolicy
from repro.service.pool import ServicePool, ServiceQuarantined
from repro.service.server import (
    PendingReply,
    Reply,
    SimulationService,
)
from repro.service.simulate import request_point, run_cell, run_jobspec
from repro.sweep.cache import ResultCache

POINT_ARGS = {
    "matrix": "ASI", "scale": "tiny", "kernel": "spmm", "k": 8, "pes": 2,
}

GENEROUS = AdmissionPolicy(
    max_queue=64, interactive_reserve=0,
    quota_rate=1_000.0, quota_burst=1_000.0,
)


def _answer(service, body):
    outcome = service.begin(body)
    if isinstance(outcome, Reply):
        return outcome
    assert isinstance(outcome, PendingReply)
    try:
        result = outcome.future.result(timeout=120)
    except BaseException as exc:  # noqa: BLE001 - rendered as Reply
        return service.finish(outcome, None, exc)
    return service.finish(outcome, result)


class TestWorkerDeathMidRequest:
    def test_sigkilled_worker_requeues_and_serves(self, tmp_path):
        ledger = RunLedger(
            tmp_path / "ledger" / "svc.jsonl", run_id="svc-chaos"
        )
        cache = ResultCache(str(tmp_path / "cache"))
        pool = ServicePool(
            cache, workers=1,
            chaos=ChaosConfig(sweep_kills=((0, 1),)),
            max_attempts=3, ledger=ledger,
        )
        try:
            service = SimulationService(
                cache, pool, policy=GENEROUS, ledger=ledger
            )
            reply = _answer(service, dict(POINT_ARGS))
            assert reply.status == 200
            assert reply.payload["source"] == "executed"
            assert reply.payload["attempt"] == 2
            assert pool.requeued == 1
            assert pool.executed == 1
            # The answer survived the crash bit-identical: it is the
            # same summary a direct in-process cell call computes.
            point = request_point(POINT_ARGS)
            assert reply.payload["result"] == run_cell(None, point)
            ledger.flush()
            statuses = [
                (e.get("status"), e.get("attempt"))
                for e in read_events(ledger.path)
                if e["e"] == "sweep_job"
            ]
            assert ("requeued", 2) in statuses
            assert ("completed", 2) in statuses
        finally:
            pool.close()
            ledger.close()

    def test_pool_stays_serviceable_after_a_death(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        pool = ServicePool(
            cache, workers=1,
            chaos=ChaosConfig(sweep_kills=((0, 1),)),
            max_attempts=3,
        )
        try:
            service = SimulationService(cache, pool, policy=GENEROUS)
            first = _answer(service, dict(POINT_ARGS))
            assert first.status == 200
            # The kill schedule hits attempt 1 of *every* job (all
            # service jobs are index 0), so the second key also loses a
            # worker — and also survives via the requeue ladder.
            second = _answer(
                service, dict(POINT_ARGS, kernel="sddmm")
            )
            assert second.status == 200
            assert pool.executed == 2
            assert pool.requeued == 2
        finally:
            pool.close()


class TestQuarantine:
    def _poison_pool(self, tmp_path, ledger=None):
        cache = ResultCache(str(tmp_path / "cache"))
        # Every attempt dies: 3 kills >= max_attempts=3.
        chaos = ChaosConfig(sweep_kills=((0, 1), (0, 2), (0, 3)))
        return cache, ServicePool(
            cache, workers=1, chaos=chaos, max_attempts=3,
            ledger=ledger,
        )

    def test_poison_request_gets_503_with_manifest(self, tmp_path):
        import json
        import os

        cache, pool = self._poison_pool(tmp_path)
        try:
            service = SimulationService(cache, pool, policy=GENEROUS)
            reply = _answer(service, dict(POINT_ARGS))
            assert reply.status == 503
            manifest_path = reply.payload["quarantine_manifest"]
            assert manifest_path and os.path.exists(manifest_path)
            with open(manifest_path) as fh:
                manifest = json.load(fh)
            assert manifest["driver"] == "serve"
            assert manifest["attempts"] == 3
            assert "worker died" in manifest["error"]
            assert pool.quarantined == 1
        finally:
            pool.close()

    def test_quarantined_key_fails_fast_next_time(self, tmp_path):
        cache, pool = self._poison_pool(tmp_path)
        try:
            service = SimulationService(cache, pool, policy=GENEROUS)
            first = _answer(service, dict(POINT_ARGS))
            assert first.status == 503
            # The next request for the same key never reaches a worker:
            # the manifest answers immediately.
            again = _answer(service, dict(POINT_ARGS))
            assert again.status == 503
            assert again.payload["quarantine_manifest"]
            # Fail-fast means no new attempts were burned: still 3.
            assert pool.quarantined == 2  # one ladder + one manifest hit
        finally:
            pool.close()

    def test_quarantine_is_ledger_visible(self, tmp_path):
        ledger = RunLedger(
            tmp_path / "ledger" / "svc.jsonl", run_id="svc-poison"
        )
        cache, pool = self._poison_pool(tmp_path, ledger=ledger)
        try:
            service = SimulationService(
                cache, pool, policy=GENEROUS, ledger=ledger
            )
            reply = _answer(service, dict(POINT_ARGS))
            assert reply.status == 503
            ledger.flush()
            events = read_events(ledger.path)
            q = [
                e for e in events
                if e["e"] == "sweep_job"
                and e["status"] == "quarantined"
            ]
            assert len(q) == 1 and q[0]["driver"] == "serve"
            failed = [
                e for e in events
                if e["e"] == "service" and e["status"] == "failed"
            ]
            assert failed and failed[0]["code"] == 503
        finally:
            pool.close()
            ledger.close()


class TestPoolDirect:
    def test_future_raises_service_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        chaos = ChaosConfig(sweep_kills=((0, 1), (0, 2)))
        pool = ServicePool(
            cache, workers=1, chaos=chaos, max_attempts=2
        )
        try:
            spec = run_jobspec(request_point(POINT_ARGS))
            future = pool.submit(spec, run_cell)
            with pytest.raises(ServiceQuarantined) as info:
                future.result(timeout=120)
            assert info.value.key == spec.key
            assert info.value.manifest_path
        finally:
            pool.close()
