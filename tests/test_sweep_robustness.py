"""Crash-safety tests for the supervised sweep pool.

Exercises the whole ladder the lease protocol exists for:
worker SIGKILL -> sentinel detection -> lease/attempt bump -> requeue
-> re-execution (parity with serial), and for poison jobs ->
quarantine manifest + ledger event + counter under keep_going.

Cells are module-level (workers import them by reference) and avoid
the simulator entirely so the suite stays tier-1 fast.
"""

import json
import os
import threading
import time

import pytest

from repro.errors import SweepJobError
from repro.obs.ledger import read_events
from repro.resilience import ChaosConfig
from repro.sweep import SweepRunner, build_jobs, open_cache
from repro.sweep.lease import LeaseManager
from repro.telemetry import Telemetry
from repro.config import TelemetryConfig

POINTS = [(i,) for i in range(6)]


def _square_cell(env, point):
    (x,) = point
    return {"value": x * x}


def _flaky_cell(env, point):
    (x,) = point
    if x in (2, 5):
        raise ValueError(f"bad point {x}")
    return {"value": x}


def _slow_cell(env, point):
    (x,) = point
    time.sleep(0.05)
    return {"value": x * 10}


def _telemetry():
    return Telemetry(TelemetryConfig(metrics=True))


def _counter_value(telemetry, name):
    return telemetry.metrics.value(name)


class TestWorkerDeathRecovery:
    def test_sigkill_mid_sweep_recovers_and_matches_serial(self, tmp_path):
        # Job 2 SIGKILLs its worker on attempt 1 only; the sentinel
        # fires, the job is requeued, attempt 2 survives, and the final
        # results are byte-identical to a serial run.
        serial = [_square_cell(None, p) for p in POINTS]
        chaos = ChaosConfig(sweep_kills=((2, 1),))
        telemetry = _telemetry()
        runner = SweepRunner(
            jobs=2,
            cache=open_cache(str(tmp_path / "cache")),
            telemetry=telemetry,
            chaos=chaos,
        )
        results = runner.map_grid("rb", None, _square_cell, POINTS)
        assert results == serial
        assert runner.report.completed == len(POINTS)
        assert runner.report.requeued == 1
        assert runner.report.quarantined == 0
        assert _counter_value(
            telemetry, "spade_sweep_jobs_requeued"
        ) == 1
        assert _counter_value(
            telemetry, "spade_sweep_workers_restarted"
        ) >= 1

    def test_multiple_kills_still_converge(self, tmp_path):
        chaos = ChaosConfig(sweep_kills=((0, 1), (3, 1), (5, 1)))
        runner = SweepRunner(
            jobs=3,
            cache=open_cache(str(tmp_path / "cache")),
            chaos=chaos,
        )
        results = runner.map_grid("rb", None, _square_cell, POINTS)
        assert results == [_square_cell(None, p) for p in POINTS]
        assert runner.report.requeued == 3

    def test_kill_recovery_without_cache_or_leases(self, tmp_path):
        # The requeue ladder must work from in-memory attempt tracking
        # alone (no cache configured -> no lease directory).
        chaos = ChaosConfig(sweep_kills=((1, 1),))
        runner = SweepRunner(jobs=2, chaos=chaos)
        results = runner.map_grid("rb", None, _square_cell, POINTS)
        assert results == [_square_cell(None, p) for p in POINTS]
        assert runner.report.requeued == 1

    def test_kill_ledger_records_requeue_and_attempts(self, tmp_path):
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(tmp_path / "ledger" / "run.jsonl", run_id="t")
        chaos = ChaosConfig(sweep_kills=((2, 1),))
        runner = SweepRunner(
            jobs=2,
            cache=open_cache(str(tmp_path / "cache")),
            chaos=chaos,
            ledger=ledger,
        )
        runner.map_grid("rb", None, _square_cell, POINTS)
        ledger.close()
        events = [
            e for e in read_events(ledger.path) if e["e"] == "sweep_job"
        ]
        requeued = [e for e in events if e["status"] == "requeued"]
        assert len(requeued) == 1
        assert requeued[0]["index"] == 2
        assert requeued[0]["attempt"] == 2
        assert "worker died" in requeued[0]["error"]
        completed = [e for e in events if e["status"] == "completed"]
        # Exactly-once: every job completed exactly once, and job 2's
        # completion was its second attempt.
        assert sorted(e["index"] for e in completed) == list(range(6))
        by_index = {e["index"]: e for e in completed}
        assert by_index[2]["attempt"] == 2
        started = [e for e in events if e["status"] == "started"]
        # The killed attempt's started event survived (flushed before
        # the kill) — attempts 1 and 2 for job 2.
        assert len([e for e in started if e["index"] == 2]) == 2


class TestQuarantine:
    def test_poison_job_quarantined_under_keep_going(self, tmp_path):
        # Job 1 kills its worker on every attempt: after max_attempts
        # it must be quarantined, the rest of the grid completes and
        # caches, and manifest + counter record it.
        chaos = ChaosConfig(sweep_kills=((1, 1), (1, 2), (1, 3)))
        telemetry = _telemetry()
        cache_dir = str(tmp_path / "cache")
        runner = SweepRunner(
            jobs=2,
            cache=open_cache(cache_dir),
            telemetry=telemetry,
            chaos=chaos,
            max_attempts=3,
            keep_going=True,
        )
        results = runner.map_grid("rb", None, _square_cell, POINTS)
        assert results[1] is None
        for i in (0, 2, 3, 4, 5):
            assert results[i] == {"value": i * i}
        assert runner.report.quarantined == 1
        assert runner.report.completed == 5
        assert runner.report.requeued == 2  # attempts 2 and 3 requeued
        assert _counter_value(
            telemetry, "spade_sweep_jobs_quarantined"
        ) == 1
        # Machine-readable manifest in the lease directory.
        leases = LeaseManager(
            open_cache(cache_dir).default_lease_dir(), ttl_s=30.0
        )
        specs = build_jobs("rb", None, POINTS)
        manifest = leases.is_quarantined(specs[1].key)
        assert manifest is not None
        assert manifest["attempts"] == 3
        assert "worker died" in manifest["error"]
        assert manifest["driver"] == "rb"

    def test_quarantine_skipped_on_rerun(self, tmp_path):
        chaos = ChaosConfig(sweep_kills=((1, 1), (1, 2), (1, 3)))
        cache_dir = str(tmp_path / "cache")
        first = SweepRunner(
            jobs=2, cache=open_cache(cache_dir), chaos=chaos,
            max_attempts=3, keep_going=True,
        )
        first.map_grid("rb", None, _square_cell, POINTS)
        # Second run: completed jobs come from cache, the poison job is
        # skipped via its manifest without a single new attempt.
        second = SweepRunner(
            jobs=2, cache=open_cache(cache_dir), chaos=chaos,
            max_attempts=3, keep_going=True,
        )
        results = second.map_grid("rb", None, _square_cell, POINTS)
        assert results[1] is None
        assert second.report.cached == 5
        assert second.report.completed == 0
        assert second.report.requeued == 0
        assert second.report.quarantined == 1

    def test_poison_without_keep_going_raises(self, tmp_path):
        chaos = ChaosConfig(sweep_kills=((1, 1), (1, 2), (1, 3)))
        runner = SweepRunner(
            jobs=2, cache=open_cache(str(tmp_path / "cache")),
            chaos=chaos, max_attempts=3,
        )
        with pytest.raises(SweepJobError) as err:
            runner.map_grid("rb", None, _square_cell, POINTS)
        assert "worker died" in str(err.value)
        # The healthy jobs still landed in the cache before the raise.
        assert runner.report.completed == 5

    def test_clean_failures_leave_holes_under_keep_going(self, tmp_path):
        runner = SweepRunner(jobs=1, keep_going=True)
        results = runner.map_grid("rb", None, _flaky_cell, POINTS)
        assert results[2] is None and results[5] is None
        assert results[0] == {"value": 0}
        assert runner.report.failed == 2


class TestFailureDeterminism:
    def test_failure_ordering_identical_serial_vs_parallel(self):
        # Satellite: SweepJobError reports failures sorted by
        # repr(point), so the message is identical under jobs=1 and
        # jobs=4 regardless of completion order.
        messages = []
        for jobs in (1, 4):
            runner = SweepRunner(jobs=jobs)
            with pytest.raises(SweepJobError) as err:
                runner.map_grid("rb", None, _flaky_cell, POINTS)
            messages.append(str(err.value))
            assert err.value.failures == sorted(
                err.value.failures, key=lambda f: repr(f[0])
            )
        assert messages[0] == messages[1]


class TestShardedSweeps:
    def _run_shard(self, shard, cache_dir, ledger_dir, out, barrier):
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(
            ledger_dir / f"shard{shard[0]}.jsonl",
            run_id=f"shard{shard[0]}",
        )
        runner = SweepRunner(
            jobs=1,
            cache=open_cache(cache_dir),
            shard=shard,
            lease_ttl_s=10.0,
            ledger=ledger,
        )
        barrier.wait(timeout=10.0)
        results = runner.map_grid("rb", None, _slow_cell, POINTS)
        ledger.close()
        out[shard] = (results, runner.report)

    def test_two_shards_share_one_grid_exactly_once(self, tmp_path):
        # Two concurrent runners over one shared cache+lease dir: both
        # return the full grid byte-identical to serial, and the merged
        # ledgers show every job executed exactly once.
        serial = [_slow_cell(None, p) for p in POINTS]
        cache_dir = str(tmp_path / "cache")
        ledger_dir = tmp_path / "ledgers"
        ledger_dir.mkdir()
        out = {}
        barrier = threading.Barrier(2)
        threads = [
            threading.Thread(
                target=self._run_shard,
                args=((i, 2), cache_dir, ledger_dir, out, barrier),
            )
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert len(out) == 2, "a shard runner died or hung"
        for shard, (results, report) in out.items():
            assert results == serial, f"shard {shard} diverged"
            assert report.quarantined == 0
        # Every job executed exactly once across the two runners.
        completed = {}
        for path in sorted(ledger_dir.glob("shard*.jsonl")):
            for ev in read_events(path):
                if (
                    ev.get("e") == "sweep_job"
                    and ev.get("status") == "completed"
                ):
                    completed[ev["key"]] = completed.get(ev["key"], 0) + 1
        specs = build_jobs("rb", None, POINTS)
        assert len(completed) == len(specs)
        assert all(count == 1 for count in completed.values()), completed
        total_completed = sum(
            report.completed for _, report in out.values()
        )
        total_cached = sum(report.cached for _, report in out.values())
        assert total_completed == len(POINTS)
        assert total_completed + total_cached == 2 * len(POINTS)

    def test_dead_shard_runner_is_reclaimed(self, tmp_path):
        # A "runner" claimed a job and died (simulated by planting a
        # backdated foreign lease): the surviving runner must reclaim
        # the stale lease and execute the job itself, at attempt 2.
        cache_dir = str(tmp_path / "cache")
        cache = open_cache(cache_dir)
        specs = build_jobs("rb", None, POINTS)
        dead = LeaseManager(
            cache.default_lease_dir(), owner="dead-runner", ttl_s=1.0
        )
        assert dead.try_claim(specs[3].key) == 1
        old = time.time() - 3600
        os.utime(dead.path_for(specs[3].key), (old, old))
        runner = SweepRunner(
            jobs=1, cache=open_cache(cache_dir), lease_ttl_s=1.0
        )
        results = runner.map_grid("rb", None, _square_cell, POINTS)
        assert results == [_square_cell(None, p) for p in POINTS]
        assert runner.report.completed == len(POINTS)

    def test_foreign_live_holder_is_awaited(self, tmp_path):
        # A live foreign holder publishes the result while we wait; the
        # waiting runner must pick it up from the cache, not execute.
        cache_dir = str(tmp_path / "cache")
        cache = open_cache(cache_dir)
        specs = build_jobs("rb", None, POINTS)
        holder = LeaseManager(
            cache.default_lease_dir(), owner="peer", ttl_s=30.0
        )
        assert holder.try_claim(specs[0].key) == 1

        def publish_late():
            time.sleep(0.3)
            cache.put(specs[0].key, {"value": 0})
            holder.release(specs[0].key)

        thread = threading.Thread(target=publish_late)
        thread.start()
        runner = SweepRunner(
            jobs=1, cache=open_cache(cache_dir), lease_ttl_s=30.0,
            foreign_poll_s=0.05,
        )
        results = runner.map_grid("rb", None, _square_cell, POINTS)
        thread.join(timeout=5.0)
        assert results == [_square_cell(None, p) for p in POINTS]
        # Job 0 was served from the peer's publish, not re-executed.
        assert runner.report.completed == len(POINTS) - 1
        assert runner.report.cached == 1

    def test_shard_requires_cache(self):
        from repro.errors import SweepError

        with pytest.raises(SweepError):
            SweepRunner(jobs=1, shard=(0, 2))

    def test_shard_validation(self, tmp_path):
        from repro.errors import SweepError

        cache = open_cache(str(tmp_path / "cache"))
        with pytest.raises(SweepError):
            SweepRunner(jobs=1, cache=cache, shard=(2, 2))
        with pytest.raises(SweepError):
            SweepRunner(jobs=1, cache=cache, shard=(-1, 2))


class TestLeaseRunnerIntegration:
    def test_leases_released_after_clean_sweep(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        runner = SweepRunner(jobs=2, cache=open_cache(cache_dir))
        runner.map_grid("rb", None, _square_cell, POINTS)
        lease_root = open_cache(cache_dir).default_lease_dir()
        leftovers = []
        for dirpath, _dirnames, filenames in os.walk(lease_root):
            leftovers += [f for f in filenames if f.endswith(".lease")]
        assert leftovers == []

    def test_quarantine_manifest_is_json(self, tmp_path):
        chaos = ChaosConfig(sweep_kills=((0, 1), (0, 2), (0, 3)))
        cache_dir = str(tmp_path / "cache")
        runner = SweepRunner(
            jobs=2, cache=open_cache(cache_dir), chaos=chaos,
            max_attempts=3, keep_going=True,
        )
        runner.map_grid("rb", None, _square_cell, POINTS[:2])
        qdir = os.path.join(
            open_cache(cache_dir).default_lease_dir(), "quarantine"
        )
        names = os.listdir(qdir)
        assert len(names) == 1
        manifest = json.loads(open(os.path.join(qdir, names[0])).read())
        assert manifest["index"] == 0
        assert manifest["point"] == repr(POINTS[0])
