"""Unit tests for the result cache, the locking primitives, and the
shared-directory write-collision regression (cache AND checkpoints)."""

import json
import multiprocessing
import os
import pickle

import pytest

from repro.locks import FileLock, LockTimeout, exclusive_tmp_path
from repro.resilience.checkpoint import CheckpointManager
from repro.sweep import ResultCache, open_cache

KEY = "ab" + "c" * 62
OTHER = "ab" + "d" * 62


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(KEY) == (False, None)
        cache.put(KEY, {"rows": [1, 2, 3]})
        assert cache.get(KEY) == (True, {"rows": [1, 2, 3]})
        assert cache.hits == 1 and cache.misses == 1 and cache.writes == 1

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, 1)
        assert os.path.isfile(tmp_path / KEY[:2] / f"{KEY}.res")
        assert cache.keys() == [KEY]
        assert len(cache) == 1

    def test_header_is_self_describing_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, "payload")
        with open(path, "rb") as fh:
            header = json.loads(fh.readline())
        assert header["format"] == "spade-sweep-result"
        assert header["key"] == KEY
        assert header["payload_bytes"] > 0

    @pytest.mark.parametrize(
        "corruption",
        ["truncate", "flip_payload", "wrong_key", "garbage_header"],
    )
    def test_corrupt_entry_is_miss_and_evicted(self, tmp_path, corruption):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, {"value": 42})
        raw = open(path, "rb").read()
        if corruption == "truncate":
            open(path, "wb").write(raw[:-3])
        elif corruption == "flip_payload":
            open(path, "wb").write(raw[:-1] + bytes([raw[-1] ^ 0xFF]))
        elif corruption == "wrong_key":
            header, payload = raw.split(b"\n", 1)
            doc = json.loads(header)
            doc["key"] = OTHER
            open(path, "wb").write(
                json.dumps(doc).encode() + b"\n" + payload
            )
        else:
            open(path, "wb").write(b"not json\n" + raw)
        assert cache.get(KEY) == (False, None)
        assert not os.path.exists(path), "corrupt entry must self-evict"
        # The slot heals: a rewrite hits again.
        cache.put(KEY, {"value": 42})
        assert cache.get(KEY) == (True, {"value": 42})

    def test_leftover_tmp_files_are_not_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, 1)
        shard = tmp_path / KEY[:2]
        (shard / f".{OTHER}.res.999.0.tmp").write_bytes(b"partial")
        assert cache.keys() == [KEY]

    def test_open_cache_none_propagates(self, tmp_path):
        assert open_cache(None) is None
        assert open_cache(tmp_path) is not None


class TestExclusiveTmpPath:
    def test_unique_per_call(self, tmp_path):
        target = str(tmp_path / "file.res")
        tmps = {exclusive_tmp_path(target) for _ in range(32)}
        assert len(tmps) == 32
        for tmp in tmps:
            assert os.path.exists(tmp)
            assert os.path.basename(tmp).startswith(".file.res.")

    def test_skips_existing_leftovers(self, tmp_path, monkeypatch):
        """If a leftover file occupies the next candidate name (pid
        recycling), the next counter value is used instead of opening
        the existing file."""
        import itertools

        import repro.locks as locks

        target = str(tmp_path / "file.res")
        monkeypatch.setattr(locks, "_TMP_COUNTER", itertools.count())
        squatter = tmp_path / f".file.res.{os.getpid()}.0.tmp"
        squatter.write_bytes(b"old writer's bytes")
        tmp = exclusive_tmp_path(target)
        assert tmp != str(squatter)
        assert open(str(squatter), "rb").read() == b"old writer's bytes"
        assert open(tmp, "rb").read() == b""


def _worker_put(args):
    directory, key, tag, count = args
    cache = ResultCache(directory)
    for i in range(count):
        cache.put(key, {"writer": tag, "iteration": i, "pad": "x" * 4096})
    return tag


class TestForcedCollisions:
    """Regression tests for the shared-directory write collision: many
    writers hammering the same key must never publish spliced bytes."""

    def test_cache_collision_across_processes(self, tmp_path):
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        args = [(str(tmp_path), KEY, tag, 10) for tag in range(4)]
        with ctx.Pool(processes=4) as pool:
            pool.map(_worker_put, args)
        cache = ResultCache(tmp_path)
        hit, value = cache.get(KEY)
        assert hit, "racing writers must leave a valid entry"
        assert value["writer"] in range(4) and value["pad"] == "x" * 4096
        # No temp-file debris survives a clean run.
        debris = [
            name
            for name in os.listdir(tmp_path / KEY[:2])
            if name.endswith(".tmp")
        ]
        assert debris == []

    def test_checkpoint_collision_same_epoch(self, tmp_path):
        """Two managers snapshotting the same epoch into one directory
        (the pre-fix broken case: both opened ``path + '.tmp'``)."""
        a = CheckpointManager(str(tmp_path), fingerprint="f" * 64)
        b = CheckpointManager(str(tmp_path), fingerprint="f" * 64)
        state_a = {"epoch": 7, "writer": "a", "pad": list(range(2000))}
        state_b = {"epoch": 7, "writer": "b", "pad": list(range(2000))}

        # Interleave the writes at the tmp-file level: both create
        # their tmp before either publishes.  With a shared tmp name
        # this produced spliced bytes; with O_EXCL names both writes
        # are intact and the last rename wins.
        import repro.resilience.checkpoint as ckpt_mod

        published = []
        real_replace = os.replace

        def delayed_replace(src, dst):
            published.append(src)
            if len(published) == 1:
                # First writer publishes only after the second's write
                # completed: emulated by writing b inline here.
                b.write(7, state_b)
            real_replace(src, dst)

        ckpt_mod.os.replace = delayed_replace
        try:
            a.write(7, state_a)
        finally:
            ckpt_mod.os.replace = real_replace

        header, state = a.load_latest()
        assert header["epoch"] == 7
        assert state["writer"] in ("a", "b")
        assert state["pad"] == list(range(2000)), "payload must be intact"

    def test_checkpoint_write_failure_cleans_tmp(self, tmp_path, monkeypatch):
        mgr = CheckpointManager(str(tmp_path), fingerprint="f" * 64)
        monkeypatch.setattr(
            os, "fsync", lambda fd: (_ for _ in ()).throw(OSError("disk"))
        )
        with pytest.raises(OSError):
            mgr.write(0, {"x": 1})
        leftovers = [
            n for n in os.listdir(tmp_path) if n.endswith(".tmp")
        ]
        assert leftovers == []


class TestFileLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(str(tmp_path / "dir.lock"))
        assert not lock.held
        with lock:
            assert lock.held
            assert os.path.exists(tmp_path / "dir.lock")
            # Owner token is pid:nonce — the pid prefix keeps stale-lock
            # diagnosis possible, the nonce makes release verifiable.
            content = (tmp_path / "dir.lock").read_text()
            assert content.split(":")[0] == str(os.getpid())
        assert not lock.held
        assert not os.path.exists(tmp_path / "dir.lock")

    def test_contention_times_out(self, tmp_path):
        path = str(tmp_path / "dir.lock")
        holder = FileLock(path).acquire()
        waiter = FileLock(path, timeout_s=0.05, poll_s=0.01, stale_s=None)
        with pytest.raises(LockTimeout):
            waiter.acquire()
        holder.release()
        with waiter:
            assert waiter.held

    def test_stale_lock_is_broken(self, tmp_path):
        path = str(tmp_path / "dir.lock")
        FileLock(path).acquire()  # never released: dead holder
        old = os.stat(path).st_mtime - 3600
        os.utime(path, (old, old))
        fresh = FileLock(path, timeout_s=1.0, poll_s=0.01, stale_s=60.0)
        with fresh:
            assert fresh.held
