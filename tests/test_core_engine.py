"""Unit tests for the execution engine and PE trace model internals."""

import numpy as np
import pytest

from repro import KernelSettings
from repro.config import scaled_config
from repro.core.accelerator import SpadeSystem
from repro.core.engine import _ChunkCursor
from repro.core.pe import PECounters
from repro.memory.hierarchy import ServiceLevel
from repro.sparse.tiled import TileInfo


def _tile(nnz, offset=0, tid=0):
    return TileInfo(
        tile_id=tid, row_panel_id=0, col_panel_id=tid,
        sparse_in_start_offset=offset, sparse_out_start_offset=0, nnz=nnz,
    )


class TestChunkCursor:
    def test_walks_tiles_in_chunks(self):
        tiles = [_tile(10, 0, 0), _tile(5, 10, 1)]
        cursor = _ChunkCursor(tiles, chunk_nnz=4)
        chunks = []
        while True:
            nxt = cursor.next_chunk()
            if nxt is None:
                break
            chunks.append((nxt[0].tile_id, nxt[1], nxt[2]))
        assert chunks == [
            (0, 0, 4), (0, 4, 8), (0, 8, 10), (1, 0, 4), (1, 4, 5),
        ]

    def test_empty_tiles_list(self):
        assert _ChunkCursor([], 4).next_chunk() is None

    def test_chunk_covers_all_nnz(self):
        tiles = [_tile(17, 0, 0), _tile(3, 17, 1), _tile(29, 20, 2)]
        cursor = _ChunkCursor(tiles, chunk_nnz=7)
        total = 0
        while (nxt := cursor.next_chunk()) is not None:
            total += nxt[2] - nxt[1]
        assert total == 49

    @staticmethod
    def _drain(cursor):
        chunks = []
        while (nxt := cursor.next_chunk()) is not None:
            chunks.append((nxt[0].tile_id, nxt[1], nxt[2]))
        return chunks

    def test_zero_nnz_tiles_skipped(self):
        # Empty tiles (barrier epochs can produce them) must yield no
        # chunks — not zero-length chunks — wherever they appear.
        tiles = [
            _tile(0, 0, 0), _tile(5, 0, 1), _tile(0, 5, 2),
            _tile(3, 5, 3), _tile(0, 8, 4),
        ]
        assert self._drain(_ChunkCursor(tiles, chunk_nnz=4)) == [
            (1, 0, 4), (1, 4, 5), (3, 0, 3),
        ]

    def test_all_zero_nnz_tiles(self):
        cursor = _ChunkCursor([_tile(0, 0, 0), _tile(0, 0, 1)], 4)
        assert cursor.next_chunk() is None

    def test_tile_boundary_exactly_on_chunk(self):
        # nnz an exact multiple of chunk_nnz: the cursor must advance
        # to the next tile, never emit an empty (lo == hi) chunk.
        tiles = [_tile(8, 0, 0), _tile(4, 8, 1)]
        assert self._drain(_ChunkCursor(tiles, chunk_nnz=4)) == [
            (0, 0, 4), (0, 4, 8), (1, 0, 4),
        ]

    def test_final_partial_chunk(self):
        # Last chunk of the last tile is smaller than chunk_nnz and must
        # still be emitted with the exact residue bounds.
        tiles = [_tile(10, 0, 0)]
        assert self._drain(_ChunkCursor(tiles, chunk_nnz=3)) == [
            (0, 0, 3), (0, 3, 6), (0, 6, 9), (0, 9, 10),
        ]

    def test_chunk_larger_than_tile(self):
        tiles = [_tile(2, 0, 0), _tile(3, 2, 1)]
        assert self._drain(_ChunkCursor(tiles, chunk_nnz=100)) == [
            (0, 0, 2), (1, 0, 3),
        ]

    def test_exhausted_cursor_stays_exhausted(self):
        cursor = _ChunkCursor([_tile(1, 0, 0)], 4)
        assert self._drain(cursor) == [(0, 0, 1)]
        assert cursor.next_chunk() is None
        assert cursor.next_chunk() is None


class TestPECounters:
    def test_merge_sums_everything(self):
        a = PECounters(tops=1, vops=2, sparse_line_reads=3)
        a.dense_reads_by_level[ServiceLevel.DRAM] = 7
        b = PECounters(tops=10, vops=20, sparse_line_reads=30)
        b.dense_reads_by_level[ServiceLevel.DRAM] = 70
        m = a.merged(b)
        assert m.tops == 11 and m.vops == 22
        assert m.dense_reads_by_level[ServiceLevel.DRAM] == 77

    def test_total_requests(self):
        c = PECounters(sparse_line_reads=5)
        c.dense_reads_by_level[ServiceLevel.L1] = 3
        c.stores_by_level[ServiceLevel.DRAM] = 2
        assert c.total_requests == 10


class TestEngineAccounting:
    @pytest.fixture()
    def report(self, small_graph, dense_b_factory):
        system = SpadeSystem(scaled_config(4, cache_shrink=8))
        b = dense_b_factory(small_graph.num_cols, 32)
        return system.spmm(small_graph, b)

    def test_dense_reads_split_across_levels(self, report):
        total = sum(report.counters.dense_reads_by_level)
        assert total > 0
        # VRF filtering keeps dense reads at or below 2 per vOp.
        assert total <= 2 * report.counters.vops

    def test_sparse_lines_match_stream_size(self, report, small_graph):
        # Three arrays x nnz x 4B, in 64B lines, per-tile rounding; with
        # one big tile the line counts are essentially nnz*12/64.
        approx_lines = 3 * small_graph.nnz * 4 / 64
        assert report.counters.sparse_line_reads == pytest.approx(
            approx_lines, rel=0.2
        )

    def test_dram_reads_bounded_by_requests(self, report):
        assert report.stats.dram_reads <= report.counters.total_requests

    def test_stores_generated_by_writeback_manager(self, report):
        assert sum(report.counters.stores_by_level) > 0

    def test_termination_flush_accounted(self, report):
        assert report.result.termination_ns > 0
        assert report.result.dirty_lines_flushed >= 0
        assert report.result.compute_time_ns < report.time_ns

    def test_region_traffic_tags(self, report):
        regions = report.stats.by_region
        assert "sparse" in regions
        assert "cmatrix" in regions or "rmatrix" in regions

    def test_epoch_counters_sum_to_totals(
        self, small_graph, dense_b_factory
    ):
        system = SpadeSystem(scaled_config(4, cache_shrink=8))
        b = dense_b_factory(small_graph.num_cols, 32)
        rep = system.spmm(
            small_graph, b,
            KernelSettings(
                row_panel_size=16, col_panel_size=32, use_barriers=True
            ),
        )
        assert rep.counters.tops == small_graph.nnz

    def test_schedule_pe_mismatch_rejected(
        self, small_graph, dense_b_factory
    ):
        from repro.core.cpe import ControlProcessor
        from repro.core.engine import Engine
        from repro.core.instructions import Primitive
        from repro.sparse.tiled import tile_matrix

        system = SpadeSystem(scaled_config(4, cache_shrink=8))
        tiled = tile_matrix(small_graph, 256, None)
        amap = system._build_address_map(tiled, 32, Primitive.SPMM)
        init = system.cpe.make_initialization(
            Primitive.SPMM, amap, False, False, 32
        )
        from repro.core.bypass import BypassPolicy

        engine = Engine(
            system.config, tiled, init, amap, BypassPolicy()
        )
        wrong_schedule = ControlProcessor(2).build_schedule(tiled)
        engine.bind_schedule(wrong_schedule)
        with pytest.raises(ValueError, match="PEs"):
            engine.run_spmm(
                wrong_schedule,
                dense_b_factory(small_graph.num_cols, 32),
            )

    def test_unbound_schedule_rejected(self, small_graph, dense_b_factory):
        from repro.core.bypass import BypassPolicy
        from repro.core.cpe import ControlProcessor
        from repro.core.engine import Engine
        from repro.core.instructions import Primitive
        from repro.sparse.tiled import tile_matrix

        system = SpadeSystem(scaled_config(4, cache_shrink=8))
        tiled = tile_matrix(small_graph, 256, None)
        amap = system._build_address_map(tiled, 32, Primitive.SPMM)
        init = system.cpe.make_initialization(
            Primitive.SPMM, amap, False, False, 32
        )
        engine = Engine(system.config, tiled, init, amap, BypassPolicy())
        schedule = ControlProcessor(4).build_schedule(tiled)
        with pytest.raises(RuntimeError, match="bind_schedule"):
            engine.run_spmm(
                schedule, dense_b_factory(small_graph.num_cols, 32)
            )


class TestVRFFiltering:
    def test_row_reuse_filtered_by_vrf(self, dense_b_factory):
        """Consecutive nonzeros in the same row share rMatrix lines;
        the VRF tag CAM must absorb those repeats."""
        from repro.sparse.coo import COOMatrix

        n = 64
        r = np.zeros(n, dtype=np.int64)  # all in row 0
        c = np.arange(n, dtype=np.int64)
        m = COOMatrix(4, n, r, c, np.ones(n, dtype=np.float32))
        system = SpadeSystem(scaled_config(1, cache_shrink=8))
        rep = system.spmm(m, dense_b_factory(n, 32))
        rmatrix_reads = rep.stats.by_region.get("rmatrix", 0)
        # 64 tOps all touch the same 2 rMatrix lines: far fewer DRAM
        # rmatrix reads than tOps.
        assert rep.counters.vops == n * 2
        assert rmatrix_reads <= 8
