"""Unit tests for the area/power model (Sections 6.E, 7.G, Figure 14)."""

import pytest

from repro.config import paper_config, scaled_config
from repro.memory.stats import AccessStats, LevelStats
from repro.power.cacti import sram_model
from repro.power.report import (
    pe_max_dynamic_power_w,
    pe_pipeline_area_mm2,
    power_breakdown,
    spade_area_power,
)
from repro.power.scaling import scale_area, scale_energy, scale_power


class TestSRAMModel:
    def test_area_grows_with_size(self):
        small = sram_model("a", 1024)
        big = sram_model("b", 64 * 1024)
        assert big.area_mm2 > small.area_mm2

    def test_energy_grows_sublinearly(self):
        small = sram_model("a", 1024)
        big = sram_model("b", 64 * 1024)
        ratio = big.read_energy_pj / small.read_energy_pj
        assert 1 < ratio < 64

    def test_cam_more_expensive(self):
        ram = sram_model("r", 512)
        cam = sram_model("c", 512, is_cam=True)
        assert cam.area_mm2 > ram.area_mm2
        assert cam.read_energy_pj > ram.read_energy_pj

    def test_multiport_penalty(self):
        one = sram_model("r", 4096, ports=1)
        two = sram_model("r", 4096, ports=2)
        assert two.area_mm2 > one.area_mm2

    def test_dynamic_energy_accumulates(self):
        m = sram_model("m", 1024)
        assert m.dynamic_energy_nj(1000, 500) > m.dynamic_energy_nj(10)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            sram_model("bad", 0)


class TestScaling:
    def test_area_shrinks_toward_10nm(self):
        assert scale_area(100, 32, 10) < 100
        assert scale_area(100, 65, 10) < scale_area(100, 32, 10)

    def test_power_shrinks_toward_10nm(self):
        assert scale_power(10, 32, 10) < 10

    def test_identity(self):
        assert scale_area(5.0, 32, 32) == 5.0
        assert scale_energy(5.0, 10, 10) == 5.0

    def test_unknown_pair_rejected(self):
        with pytest.raises(ValueError, match="scaling factor"):
            scale_area(1.0, 14, 10)


class TestSection7G:
    """The paper's headline area/power numbers must reproduce."""

    def test_area_within_10pct_of_paper(self):
        ap = spade_area_power(paper_config())
        assert ap.area_mm2 == pytest.approx(24.64, rel=0.10)

    def test_power_within_10pct_of_paper(self):
        ap = spade_area_power(paper_config())
        assert ap.power_w == pytest.approx(20.3, rel=0.10)

    def test_fractions_match_paper(self):
        ap = spade_area_power(paper_config())
        assert ap.power_fraction_of_host == pytest.approx(0.043, abs=0.01)
        assert ap.area_fraction_of_host == pytest.approx(0.025, abs=0.005)

    def test_area_scales_with_pe_count(self):
        full = spade_area_power(paper_config())
        half = spade_area_power(scaled_config(112))
        assert half.area_mm2 < full.area_mm2

    def test_per_pe_quantities_positive(self):
        cfg = paper_config()
        assert pe_pipeline_area_mm2(cfg) > 0
        assert pe_max_dynamic_power_w(cfg) > 0


class TestPowerBreakdown:
    def _stats(self, dram=10_000, llc=5_000, l2=20_000) -> AccessStats:
        s = AccessStats()
        s.l2 = LevelStats(hits=l2 // 2, misses=l2 // 2)
        s.llc = LevelStats(hits=llc // 2, misses=llc // 2)
        s.dram_reads = dram
        return s

    def test_fractions_sum_to_one(self):
        bd = power_breakdown(self._stats(), 1e6, paper_config())
        assert sum(bd.fractions().values()) == pytest.approx(1.0)

    def test_dram_dominates_bandwidth_bound_runs(self):
        """Figure 14: DRAM > 50% of power for traffic-heavy kernels."""
        cfg = paper_config()
        heavy = self._stats(dram=50_000_000)
        bd = power_breakdown(heavy, 1e7, cfg)
        assert bd.fractions()["dram"] > 0.5

    def test_pe_fraction_modest(self):
        cfg = paper_config()
        bd = power_breakdown(self._stats(dram=50_000_000), 1e7, cfg)
        assert bd.fractions()["pe"] < 0.35

    def test_rejects_zero_time(self):
        with pytest.raises(ValueError):
            power_breakdown(self._stats(), 0.0, paper_config())

    def test_zero_total_fractions(self):
        from repro.power.report import PowerBreakdown

        empty = PowerBreakdown(0, 0, 0, 0)
        assert set(empty.fractions().values()) == {0.0}
