"""Unit tests for the VRF (tag CAM, status, Write-back Manager) and the
pipeline queue structures."""

import pytest

from repro.core.queues import BoundedQueue, ReservationStations, RSEntry
from repro.core.vrf import VectorRegisterFile


class TestVRFTagCAM:
    def test_miss_then_hit(self):
        vrf = VectorRegisterFile(8)
        hit, stores = vrf.access(100)
        assert not hit and not stores
        hit, _ = vrf.access(100)
        assert hit

    def test_capacity_eviction_lru(self):
        vrf = VectorRegisterFile(4, wb_high_threshold=1.0,
                                 wb_low_threshold=1.0)
        for line in range(4):
            vrf.access(line)
        vrf.access(0)  # 0 becomes MRU
        vrf.access(99)  # evicts 1 (LRU)
        hit, _ = vrf.access(0)
        assert hit
        hit, _ = vrf.access(1)
        assert not hit

    def test_dirty_eviction_generates_store(self):
        vrf = VectorRegisterFile(2, wb_high_threshold=1.0,
                                 wb_low_threshold=1.0)
        vrf.access(1, mark_dirty=True)
        vrf.access(2)
        _, stores = vrf.access(3)  # evicts 1 (dirty)
        assert stores == [1]
        assert vrf.eviction_writebacks == 1

    def test_clean_eviction_no_store(self):
        vrf = VectorRegisterFile(2)
        vrf.access(1)
        vrf.access(2)
        _, stores = vrf.access(3)
        assert stores == []

    def test_hit_rate_tracking(self):
        vrf = VectorRegisterFile(8)
        vrf.access(1)
        vrf.access(1)
        vrf.access(2)
        assert vrf.tag_lookups == 3
        assert vrf.hit_rate == pytest.approx(1 / 3)

    def test_requires_two_registers(self):
        with pytest.raises(ValueError):
            VectorRegisterFile(1)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            VectorRegisterFile(8, wb_high_threshold=0.1,
                               wb_low_threshold=0.5)


class TestWritebackManager:
    def test_drains_to_low_threshold(self):
        """Table 1: start writing back above 25% dirty, stop at 15%."""
        vrf = VectorRegisterFile(
            64, wb_high_threshold=0.25, wb_low_threshold=0.15
        )
        stores = []
        for line in range(17):  # 17 dirty > 16 = high threshold
            _, s = vrf.access(line, mark_dirty=True)
            stores.extend(s)
        assert stores  # manager fired
        # Dirty count must now be at the low threshold.
        assert vrf.dirty_fraction <= 0.15 + 1e-9

    def test_drained_lines_stay_resident(self):
        vrf = VectorRegisterFile(
            8, wb_high_threshold=0.25, wb_low_threshold=0.0
        )
        all_stores = []
        for line in range(3):
            _, s = vrf.access(line, mark_dirty=True)
            all_stores.extend(s)
        for line in range(3):
            hit, _ = vrf.access(line)
            assert hit  # still in the VRF, just clean

    def test_rewrite_after_drain_marks_dirty_again(self):
        vrf = VectorRegisterFile(
            8, wb_high_threshold=0.25, wb_low_threshold=0.0
        )
        for line in range(3):
            vrf.access(line, mark_dirty=True)
        vrf.access(0, mark_dirty=True)
        assert vrf.dirty_fraction > 0

    def test_flush_dirty_returns_all_dirty(self):
        vrf = VectorRegisterFile(16, wb_high_threshold=1.0,
                                 wb_low_threshold=1.0)
        for line in range(5):
            vrf.access(line, mark_dirty=True)
        vrf.access(99)  # clean
        assert sorted(vrf.flush_dirty()) == list(range(5))
        assert vrf.dirty_fraction == 0.0

    def test_invalidate_all_clears_tags(self):
        vrf = VectorRegisterFile(8)
        vrf.access(1, mark_dirty=True)
        stores = vrf.invalidate_all()
        assert stores == [1]
        assert vrf.occupancy == 0


class TestBoundedQueue:
    def test_push_pop_fifo(self):
        q = BoundedQueue(3)
        q.try_push("a")
        q.try_push("b")
        assert q.pop() == "a"
        assert q.peek() == "b"

    def test_full_push_stalls(self):
        q = BoundedQueue(1)
        assert q.try_push(1)
        assert not q.try_push(2)
        assert q.stalls == 1
        assert q.is_full

    def test_occupancy_sampling(self):
        q = BoundedQueue(4)
        q.try_push(1)
        q.sample_occupancy()
        q.try_push(2)
        q.sample_occupancy()
        assert q.mean_occupancy == pytest.approx(1.5)

    def test_requires_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)


class TestReservationStations:
    def test_dispatch_requires_operands(self):
        rs = ReservationStations(4)
        rs.try_insert(RSEntry(vop_id=1, operands_pending=2))
        assert rs.dispatch_ready(now=0) is None
        rs.operand_arrived(1)
        rs.operand_arrived(1)
        entry = rs.dispatch_ready(now=0)
        assert entry is not None and entry.vop_id == 1

    def test_raw_dependence_blocks_dispatch(self):
        """Section 5.1: the only inter-vOp dependence is RAW on a VR."""
        rs = ReservationStations(4)
        rs.try_insert(RSEntry(vop_id=2, operands_pending=0, depends_on=1))
        assert rs.dispatch_ready(now=0) is None
        rs.dependence_resolved(1)
        assert rs.dispatch_ready(now=0).vop_id == 2

    def test_full_insert_stalls(self):
        rs = ReservationStations(1)
        assert rs.try_insert(RSEntry(vop_id=1, operands_pending=0))
        assert not rs.try_insert(RSEntry(vop_id=2, operands_pending=0))
        assert rs.full_stalls == 1

    def test_oldest_ready_first(self):
        rs = ReservationStations(4)
        rs.try_insert(RSEntry(vop_id=1, operands_pending=1))
        rs.try_insert(RSEntry(vop_id=2, operands_pending=0))
        assert rs.dispatch_ready(now=0).vop_id == 2

    def test_ready_cycle_respected(self):
        rs = ReservationStations(2)
        rs.try_insert(RSEntry(vop_id=1, operands_pending=0, ready_cycle=10))
        assert rs.dispatch_ready(now=5) is None
        assert rs.dispatch_ready(now=10).vop_id == 1
