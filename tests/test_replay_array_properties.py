"""Property-based tests (hypothesis) for the array replay backend.

Three layers of randomized evidence, all shrinkable to tiny
counterexamples:

* A pure **stack-distance oracle** — the textbook inclusion property
  of LRU (an access hits iff the number of distinct lines touched in
  its set since its previous occurrence is below the associativity) —
  checked against the scalar ``Cache`` walk.  This is the theory the
  array solver is built on; if it ever disagreed with the dict walk,
  every downstream equivalence argument would be void.
* The **array solver on a bare cache** with random geometry (sets,
  ways, footprint) and random traces, vs the scalar walk AND the
  oracle: counters, per-set LRU order, dirty bits.  The cost model is
  disabled so the NumPy path (small-footprint fast path or dominance
  solver, whichever the trace selects) is always the thing under test.
* **Full MemorySystem traces** — random interleaved dense / bypass /
  stream ops with random chunk boundaries, replayed through
  ``replay="array"`` vs the scalar oracle: every AccessStats counter
  and the complete hierarchy state.
"""

from __future__ import annotations

import contextlib
import dataclasses

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, scaled_config
from repro.memory.cache import Cache
from repro.memory.hierarchy import (
    OP_DENSE,
    OP_DENSE_BYPASS,
    OP_STREAM,
    TRACE_REGIONS,
    MemorySystem,
    encode_op,
)
import repro.memory.replay_array as replay_array

from tests.test_memory_batched_parity import (
    CACHE_COUNTERS,
    cache_state,
    counters,
    scalar_system_replay,
    system_state,
)


@contextlib.contextmanager
def forced_array():
    """Pin dispatch to the NumPy solver for the duration of a block.

    A plain context manager (not a pytest fixture) so hypothesis does
    not see function-scoped fixture state shared across examples.
    """
    saved = (replay_array.ARRAY_MIN_EVENTS, replay_array._PY_HIT_US)
    replay_array.ARRAY_MIN_EVENTS = 0
    replay_array._PY_HIT_US = 1e9
    try:
        yield
    finally:
        replay_array.ARRAY_MIN_EVENTS, replay_array._PY_HIT_US = saved


# ---------------------------------------------------------------------------
# The shrinkable stack-distance oracle
# ---------------------------------------------------------------------------


def stack_distance_reference(lines, num_sets: int, ways: int):
    """Hit/miss per access by the LRU inclusion property alone.

    Each set keeps an unbounded recency stack (index 0 = MRU).  An
    access hits iff its line sits at stack depth < ``ways``: exactly
    the lines a W-way LRU set would still hold.  No evictions are ever
    modelled — that independence is what makes it an oracle.
    """
    stacks = [[] for _ in range(num_sets)]
    hits = []
    for line in lines:
        s = stacks[line % num_sets]
        if line in s:
            hit = s.index(line) < ways
            s.remove(line)
        else:
            hit = False
        s.insert(0, line)
        hits.append(hit)
    return hits


def scalar_replay(cache: Cache, lines, writes):
    return [cache.access(l, w)[0] for l, w in zip(lines, writes)]


traces = st.lists(
    st.tuples(st.integers(0, 23), st.booleans()),
    min_size=1,
    max_size=120,
)


@given(ways=st.integers(1, 8), set_bits=st.integers(0, 3), trace=traces)
@settings(max_examples=80, deadline=None)
def test_scalar_cache_matches_stack_distance_oracle(
    ways, set_bits, trace
):
    num_sets = 1 << set_bits
    cfg = CacheConfig(
        size_bytes=64 * ways * num_sets, associativity=ways
    )
    cache = Cache(cfg)
    assert cache.num_sets == num_sets
    lines = [t[0] for t in trace]
    writes = [t[1] for t in trace]
    assert scalar_replay(cache, lines, writes) == (
        stack_distance_reference(lines, num_sets, ways)
    )


# ---------------------------------------------------------------------------
# Array solver vs brute force on random (sets, ways, trace)
# ---------------------------------------------------------------------------


@st.composite
def geometry_and_trace(draw):
    ways = draw(st.integers(1, 8))
    num_sets = 1 << draw(st.integers(0, 3))
    # Footprints from "fits in one set" (fast path) to far beyond
    # capacity (dominance path): both solver branches get traffic.
    footprint = draw(st.sampled_from([ways, 2 * ways, 24, 200]))
    trace = draw(
        st.lists(
            st.tuples(st.integers(0, footprint - 1), st.booleans()),
            min_size=1,
            max_size=150,
        )
    )
    return ways, num_sets, trace


@given(geometry_and_trace())
@settings(max_examples=80, deadline=None)
def test_array_solver_matches_bruteforce(params):
    ways, num_sets, trace = params
    cfg = CacheConfig(
        size_bytes=64 * ways * num_sets, associativity=ways
    )
    lines = np.array([t[0] for t in trace], dtype=np.int64)
    writes = np.array([t[1] for t in trace], dtype=bool)

    oracle = Cache(cfg, name="oracle")
    solved = Cache(cfg, name="array")
    # Split at a random-ish point: solver state must carry across
    # calls exactly like the incremental walk's does.
    cut = len(trace) // 2
    with forced_array():
        for lo, hi in ((0, cut), (cut, len(trace))):
            if hi == lo:
                continue
            chunk = lines[lo:hi]
            set_id = chunk % num_sets
            replay_array._replay_level_array(
                solved,
                chunk,
                writes[lo:hi],
                None,
                np.arange(hi - lo, dtype=np.int64),
                set_id,
                np.unique(set_id),
            )
    s_hits = scalar_replay(oracle, lines.tolist(), writes.tolist())
    assert s_hits == stack_distance_reference(
        lines.tolist(), num_sets, ways
    )
    assert counters(oracle, CACHE_COUNTERS) == counters(
        solved, CACHE_COUNTERS
    )
    assert cache_state(oracle) == cache_state(solved)


# ---------------------------------------------------------------------------
# Full MemorySystem parity on random op traces
# ---------------------------------------------------------------------------


@st.composite
def op_traces(draw):
    footprint = draw(st.sampled_from([48, 1024, 1 << 14]))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, footprint - 1),
                st.sampled_from([OP_DENSE, OP_DENSE_BYPASS, OP_STREAM]),
                st.booleans(),
                st.integers(0, len(TRACE_REGIONS) - 1),
            ),
            min_size=1,
            max_size=200,
        )
    )
    cut = draw(st.integers(0, len(ops)))
    pe_ids = (draw(st.integers(0, 1)), draw(st.integers(0, 1)))
    return ops, cut, pe_ids


@given(op_traces())
@settings(max_examples=40, deadline=None)
def test_memory_system_array_matches_scalar(params):
    ops, cut, pe_ids = params
    cfg = scaled_config(2, cache_shrink=8)
    cfg_a = dataclasses.replace(cfg, replay="array")
    ms_s = MemorySystem(cfg)
    ms_a = MemorySystem(cfg_a)
    lines = np.array([o[0] for o in ops], dtype=np.int64)
    enc = np.array(
        [encode_op(int(p), bool(w), int(r)) for _, p, w, r in ops],
        dtype=np.int64,
    )
    with forced_array():
        for (lo, hi), pe_id in zip(
            ((0, cut), (cut, len(ops))), pe_ids
        ):
            if hi == lo:
                continue
            lv_s = scalar_system_replay(
                ms_s, pe_id, lines[lo:hi], enc[lo:hi]
            )
            lv_a = ms_a.replay_trace(pe_id, lines[lo:hi], enc[lo:hi])
            assert np.array_equal(lv_s, lv_a)
    assert dataclasses.asdict(ms_s.collect_stats()) == (
        dataclasses.asdict(ms_a.collect_stats())
    )
    assert system_state(ms_s) == system_state(ms_a)
