"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--matrix", "KRO"])
        args_d = vars(args)
        assert args_d["kernel"] == "spmm"
        assert args_d["k"] == 32
        assert args_d["pes"] == 8

    def test_experiment_names_listed(self):
        assert "fig09" in EXPERIMENTS
        assert "sec7g" in EXPERIMENTS
        assert len(EXPERIMENTS) == 11


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "KRO" in out and "mycielskian17" in out

    def test_config(self, capsys):
        assert main(["config", "--pes", "16"]) == 0
        out = capsys.readouterr().out
        assert "16" in out

    def test_run_spmm(self, capsys):
        code = main([
            "run", "--matrix", "ASI", "--scale", "tiny",
            "--pes", "2", "--k", "16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated time" in out
        assert "DRAM accesses" in out

    def test_run_sddmm(self, capsys):
        code = main([
            "run", "--matrix", "PAC", "--scale", "tiny",
            "--pes", "2", "--kernel", "sddmm", "--k", "16",
        ])
        assert code == 0
        assert "sddmm" in capsys.readouterr().out

    def test_run_mtx_file(self, tmp_path, tiny_matrix, capsys):
        from repro.sparse.io import write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(tiny_matrix, path)
        code = main([
            "run", "--matrix", str(path), "--pes", "2", "--k", "16",
        ])
        assert code == 0
        assert "4x4" in capsys.readouterr().out

    def test_autotune(self, capsys):
        code = main([
            "autotune", "--matrix", "KRO", "--scale", "tiny",
            "--pes", "2", "--k", "16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best" in out
        assert "SPADE Opt gain over Base" in out

    def test_experiment_sec7g(self, capsys):
        assert main(["experiment", "sec7g"]) == 0
        assert "24.64" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestTelemetryFlags:
    RUN = ["run", "--matrix", "ASI", "--scale", "tiny",
           "--pes", "2", "--k", "16"]

    def test_trace_written_and_perfetto_loadable(self, tmp_path, capsys):
        import json

        trace = tmp_path / "run.trace.json"
        assert main(self.RUN + ["--trace", str(trace)]) == 0
        assert "Perfetto" in capsys.readouterr().out
        doc = json.loads(trace.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        # The run manifest rides along in otherData.
        from repro.telemetry import validate_manifest

        validate_manifest(doc["otherData"]["manifest"])
        names = {e["name"] for e in doc["traceEvents"]}
        assert "spmm" in names and "build_schedule" in names

    def test_metrics_out_matches_report(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.json"
        assert main(self.RUN + ["--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "metrics written" in out
        doc = json.loads(metrics.read_text())
        assert doc["schema_version"] == 1
        names = {m["name"] for m in doc["metrics"]}
        assert "spade_level_hits_total" in names
        assert "spade_dram_lines_total" in names
        # DRAM accesses printed by the run equal the exported counters.
        dram_printed = int(
            [ln for ln in out.splitlines()
             if ln.startswith("DRAM accesses")][0].split(":")[1]
        )
        dram_metrics = sum(
            m["value"] for m in doc["metrics"]
            if m["name"] == "spade_dram_lines_total"
        )
        assert dram_metrics == dram_printed

    def test_metrics_out_prometheus(self, tmp_path):
        metrics = tmp_path / "metrics.prom"
        assert main(self.RUN + ["--metrics-out", str(metrics)]) == 0
        text = metrics.read_text()
        assert "# TYPE spade_level_hits_total counter" in text

    def test_manifest_out(self, tmp_path):
        import json

        from repro.telemetry import validate_manifest

        manifest = tmp_path / "manifest.json"
        assert main(self.RUN + ["--manifest-out", str(manifest)]) == 0
        doc = validate_manifest(json.loads(manifest.read_text()))
        assert doc["workload"]["matrix"] == "ASI"
        assert doc["workload"]["kernel"] == "spmm"
        assert doc["config"]["num_pes"] == 2

    def test_profile_table(self, capsys):
        assert main(self.RUN + ["--profile"]) == 0
        out = capsys.readouterr().out
        assert "hottest phases" in out
        assert "spmm" in out and "total ms" in out

    def test_trace_chunks_adds_replay_spans(self, tmp_path):
        import json

        trace = tmp_path / "chunks.trace.json"
        code = main(self.RUN + [
            "--trace", str(trace), "--trace-chunks",
        ])
        assert code == 0
        doc = json.loads(trace.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "replay" in cats

    def test_suite_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "suite.trace.json"
        code = main([
            "suite", "--scale", "tiny", "--trace", str(trace),
        ])
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        doc = json.loads(trace.read_text())
        suite_spans = [
            e for e in doc["traceEvents"] if e.get("cat") == "suite"
        ]
        assert len(suite_spans) > 0

    def test_default_run_has_no_telemetry_files(self, tmp_path, capsys):
        # No flags -> no telemetry output and no mention of traces.
        assert main(self.RUN) == 0
        out = capsys.readouterr().out
        assert "trace written" not in out
        assert "metrics written" not in out
        assert list(tmp_path.iterdir()) == []


class TestErrorPaths:
    RUN = ["run", "--matrix", "ASI", "--scale", "tiny",
           "--pes", "2", "--k", "16"]

    def test_metrics_out_bad_extension(self, tmp_path, capsys):
        code = main(self.RUN + [
            "--metrics-out", str(tmp_path / "metrics.yaml"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert ".yaml" in err and ".json" in err

    def test_trace_chunks_without_trace(self, capsys):
        assert main(self.RUN + ["--trace-chunks"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "--trace-chunks requires --trace" in err

    def test_unknown_suite_benchmark(self, capsys):
        code = main([
            "run", "--matrix", "NOPE", "--scale", "tiny", "--pes", "2",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "unknown benchmark" in err and "NOPE" in err

    def test_resume_without_checkpoint_dir(self, capsys):
        assert main(self.RUN + ["--resume"]) == 2
        err = capsys.readouterr().err
        assert "--resume requires --checkpoint-dir" in err

    def test_bad_shape_mtx_is_not_a_traceback(self, tmp_path, capsys):
        # A SpadeError from deeper in the stack surfaces as exit 2 +
        # stderr, not an uncaught traceback.
        from repro.errors import SpadeError

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])  # missing --matrix
        assert issubclass(SpadeError, Exception)


class TestSweepFlags:
    RUN = ["run", "--matrix", "ASI", "--scale", "tiny",
           "--pes", "2", "--k", "16"]

    def test_parser_defaults(self):
        for cmd in (self.RUN, ["suite"], ["experiment", "sec7g"]):
            args = build_parser().parse_args(cmd)
            assert args.jobs == 1
            assert args.cache_dir is None
            assert args.no_cache is False

    def test_run_jobs_output_identical_to_serial(self, capsys):
        assert main(self.RUN) == 0
        serial = capsys.readouterr().out
        assert main(self.RUN + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_run_cache_dir_warm_rerun_identical(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(self.RUN + ["--cache-dir", cache]) == 0
        cold = capsys.readouterr().out
        assert main(self.RUN + ["--cache-dir", cache]) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        # The cache really holds the result on disk.
        from repro.sweep import ResultCache

        assert len(ResultCache(cache)) == 1

    def test_run_no_cache_accepted_alone(self, capsys):
        assert main(self.RUN + ["--no-cache", "--jobs", "2"]) == 0
        assert "simulated time" in capsys.readouterr().out

    def test_suite_jobs_output_identical_to_serial(self, capsys):
        assert main(["suite", "--scale", "tiny"]) == 0
        serial = capsys.readouterr().out
        assert main(["suite", "--scale", "tiny", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_experiment_jobs_and_cache(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.setenv("REPRO_PES", "2")
        cache = str(tmp_path / "cache")
        argv = ["experiment", "fig14", "--jobs", "2",
                "--cache-dir", cache]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "0 cached" in first.err
        assert "0 executed" in second.err

    def test_telemetry_flags_force_live_run(self, tmp_path, capsys):
        """A cache hit would skip the simulation the trace observes, so
        telemetry flags bypass the sweep path."""
        import json

        cache = str(tmp_path / "cache")
        trace = tmp_path / "run.trace.json"
        assert main(self.RUN + [
            "--cache-dir", cache, "--trace", str(trace),
        ]) == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        from repro.sweep import ResultCache

        assert len(ResultCache(cache)) == 0


class TestSweepFlagErrors:
    RUN = ["run", "--matrix", "ASI", "--scale", "tiny",
           "--pes", "2", "--k", "16"]

    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "--matrix", "ASI", "--scale", "tiny", "--pes", "2"],
            ["suite", "--scale", "tiny"],
            ["experiment", "sec7g"],
        ],
        ids=["run", "suite", "experiment"],
    )
    def test_no_cache_conflicts_with_cache_dir(self, argv, tmp_path, capsys):
        code = main(argv + [
            "--no-cache", "--cache-dir", str(tmp_path / "c"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "--no-cache conflicts with --cache-dir" in err

    @pytest.mark.parametrize("jobs", ["0", "-3"])
    def test_nonpositive_jobs_rejected(self, jobs, capsys):
        assert main(self.RUN + ["--jobs", jobs]) == 2
        assert "--jobs must be a positive" in capsys.readouterr().err

    def test_resume_validation_still_wins(self, tmp_path, capsys):
        """Sweep checks compose with the existing run validations."""
        code = main(self.RUN + ["--resume", "--jobs", "2"])
        assert code == 2
        assert "--resume requires" in capsys.readouterr().err


class TestSweepCommand:
    def _tiny(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.setenv("REPRO_PES", "2")

    def test_output_identical_to_experiment(
        self, tmp_path, capsys, monkeypatch
    ):
        self._tiny(monkeypatch)
        assert main(["experiment", "fig14"]) == 0
        serial = capsys.readouterr()
        cache = str(tmp_path / "cache")
        argv = ["sweep", "fig14", "--jobs", "2", "--cache-dir", cache]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert first.out == serial.out
        assert "0 cached" in first.err
        # Warm re-run: same bytes, everything cached.
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == serial.out
        assert "0 executed" in second.err
        # The lease directory lives inside the cache without polluting
        # the result key space.
        import os

        assert os.path.isdir(os.path.join(cache, ".leases"))

    def test_single_shard_grid(self, tmp_path, capsys, monkeypatch):
        self._tiny(monkeypatch)
        assert main(["experiment", "fig14"]) == 0
        serial = capsys.readouterr()
        cache = str(tmp_path / "cache")
        assert main([
            "sweep", "fig14", "--shard", "0/1", "--cache-dir", cache,
        ]) == 0
        sharded = capsys.readouterr()
        assert sharded.out == serial.out

    def test_shard_requires_cache_dir(self, capsys):
        assert main(["sweep", "fig14", "--shard", "0/2"]) == 2
        err = capsys.readouterr().err
        assert "--shard i/N requires --cache-dir" in err

    # (a leading-dash spec like "-1/2" never reaches _shard_spec —
    # argparse treats it as an option and rejects it on its own)
    @pytest.mark.parametrize("spec, diagnostic", [
        ("2/2", "0-based"),          # 1-based slip gets the fix-it
        ("4/2", "0/2 .. 1/2"),       # ...spelling out the valid range
        ("1", "i/N"),
        ("a/b", "i/N"),
        ("1/0", "count must be >= 1"),
    ])
    def test_bad_shard_spec_rejected(
        self, spec, diagnostic, tmp_path, capsys
    ):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "sweep", "fig14", "--shard", spec,
                "--cache-dir", str(tmp_path / "c"),
            ])
        err = capsys.readouterr().err
        assert "shard" in err
        assert diagnostic in err

    def test_shard_help_documents_zero_base(self):
        # The help text and the error diagnostics must agree that
        # shards are 0-based (regression: the help used to show i/N
        # with no base, and 1-based N/N slips got an opaque bound).
        import argparse as _argparse

        parser = build_parser()
        sweep_parser = None
        for action in parser._subparsers._group_actions:
            sweep_parser = action.choices.get("sweep")
        assert sweep_parser is not None
        help_text = sweep_parser.format_help()
        assert "0-based" in help_text
        with pytest.raises(_argparse.ArgumentTypeError) as info:
            from repro.cli import _shard_spec

            _shard_spec("2/2")
        assert "0-based" in str(info.value)

    def test_bad_max_attempts_rejected(self, tmp_path, capsys):
        assert main([
            "sweep", "fig14", "--max-attempts", "0",
            "--cache-dir", str(tmp_path / "c"),
        ]) == 2
        assert "--max-attempts" in capsys.readouterr().err

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["sweep", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep", "fig14"])
        assert args.shard is None
        assert args.max_attempts == 3
        assert args.keep_going is False
        assert args.lease_ttl == 30.0
        assert args.lease_dir is None


class TestResilienceFlags:
    RUN = ["run", "--matrix", "ASI", "--scale", "tiny",
           "--pes", "2", "--k", "16"]

    def test_checkpoint_dir_writes_snapshots(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        assert main(self.RUN + ["--checkpoint-dir", str(ckpt_dir)]) == 0
        assert list(ckpt_dir.glob("ckpt-epoch-*.ckpt"))

    def test_checkpoint_then_resume_round_trip(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        assert main(self.RUN + ["--checkpoint-dir", str(ckpt_dir)]) == 0
        first = capsys.readouterr().out
        assert main(self.RUN + [
            "--checkpoint-dir", str(ckpt_dir), "--resume",
        ]) == 0
        second = capsys.readouterr().out

        def sim_time(out):
            return [ln for ln in out.splitlines()
                    if ln.startswith("simulated time")][0]

        assert sim_time(first) == sim_time(second)

    def test_timeout_and_retries_accepted(self, capsys):
        assert main(self.RUN + [
            "--timeout", "300", "--max-retries", "2",
        ]) == 0
        assert "simulated time" in capsys.readouterr().out


class TestReplayFlag:
    """``--replay`` selects the trace-replay backend end to end."""

    RUN = ["run", "--matrix", "ASI", "--scale", "tiny",
           "--pes", "2", "--k", "16"]

    def test_parser_accepts_registry_modes(self):
        from repro.config import replay_modes

        assert build_parser().parse_args(self.RUN).replay is None
        for mode in replay_modes():
            args = build_parser().parse_args(
                self.RUN + ["--replay", mode]
            )
            assert args.replay == mode

    def test_unknown_mode_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(self.RUN + ["--replay", "bogus"])
        assert "--replay" in capsys.readouterr().err

    def test_run_output_identical_across_modes(self, capsys):
        """All backends are bit-identical, so the printed report must
        not change when the replay mode does."""
        assert main(self.RUN + ["--replay", "scalar"]) == 0
        want = capsys.readouterr().out
        for mode in ("batched", "array"):
            assert main(self.RUN + ["--replay", mode]) == 0
            assert capsys.readouterr().out == want

    def test_sweep_and_cached_rerun_round_trip(self, tmp_path, capsys):
        """The replay mode survives the sweep cell path: live run,
        cold cached run, and warm cache hit all print the same report."""
        assert main(self.RUN + ["--replay", "array"]) == 0
        live = capsys.readouterr().out
        cache = str(tmp_path / "cache")
        argv = self.RUN + ["--replay", "array", "--cache-dir", cache]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert cold == live
        assert warm == live
        from repro.sweep import ResultCache

        assert len(ResultCache(cache)) == 1

    def test_replay_mode_is_part_of_the_cache_key(self, tmp_path, capsys):
        """Different --replay values must not collide in the result
        cache even though their results are identical."""
        cache = str(tmp_path / "cache")
        for mode in ("scalar", "array"):
            assert main(
                self.RUN + ["--replay", mode, "--cache-dir", cache]
            ) == 0
        capsys.readouterr()
        from repro.sweep import ResultCache

        assert len(ResultCache(cache)) == 2

    def test_autotune_accepts_replay(self, capsys):
        code = main([
            "autotune", "--matrix", "ASI", "--scale", "tiny",
            "--pes", "2", "--k", "16", "--replay", "array",
        ])
        assert code == 0
        assert "best" in capsys.readouterr().out
