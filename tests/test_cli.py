"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--matrix", "KRO"])
        args_d = vars(args)
        assert args_d["kernel"] == "spmm"
        assert args_d["k"] == 32
        assert args_d["pes"] == 8

    def test_experiment_names_listed(self):
        assert "fig09" in EXPERIMENTS
        assert "sec7g" in EXPERIMENTS
        assert len(EXPERIMENTS) == 11


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "KRO" in out and "mycielskian17" in out

    def test_config(self, capsys):
        assert main(["config", "--pes", "16"]) == 0
        out = capsys.readouterr().out
        assert "16" in out

    def test_run_spmm(self, capsys):
        code = main([
            "run", "--matrix", "ASI", "--scale", "tiny",
            "--pes", "2", "--k", "16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated time" in out
        assert "DRAM accesses" in out

    def test_run_sddmm(self, capsys):
        code = main([
            "run", "--matrix", "PAC", "--scale", "tiny",
            "--pes", "2", "--kernel", "sddmm", "--k", "16",
        ])
        assert code == 0
        assert "sddmm" in capsys.readouterr().out

    def test_run_mtx_file(self, tmp_path, tiny_matrix, capsys):
        from repro.sparse.io import write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(tiny_matrix, path)
        code = main([
            "run", "--matrix", str(path), "--pes", "2", "--k", "16",
        ])
        assert code == 0
        assert "4x4" in capsys.readouterr().out

    def test_autotune(self, capsys):
        code = main([
            "autotune", "--matrix", "KRO", "--scale", "tiny",
            "--pes", "2", "--k", "16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best" in out
        assert "SPADE Opt gain over Base" in out

    def test_experiment_sec7g(self, capsys):
        assert main(["experiment", "sec7g"]) == 0
        assert "24.64" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
