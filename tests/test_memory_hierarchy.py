"""Unit tests for address map, DRAM, TLB, stats, and the composed
memory hierarchy."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.memory.address import (
    AddressMap,
    PAGE_BYTES,
    line_of,
    lines_spanning,
    padded_row_bytes,
)
from repro.memory.dram import DRAMModel
from repro.memory.hierarchy import MemorySystem, ServiceLevel
from repro.memory.stats import AccessStats, LevelStats
from repro.memory.tlb import STLB, PAGE_WALK_LATENCY_NS


class TestAddressMath:
    def test_line_of(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1

    def test_lines_spanning(self):
        assert list(lines_spanning(0, 64)) == [0]
        assert list(lines_spanning(32, 64)) == [0, 1]
        assert list(lines_spanning(0, 0)) == []

    def test_padded_row_bytes(self):
        assert padded_row_bytes(16) == 64   # exactly one line
        assert padded_row_bytes(17) == 128  # padded up
        assert padded_row_bytes(32) == 128


class TestAddressMap:
    def test_regions_page_aligned_disjoint(self):
        amap = AddressMap()
        r1 = amap.allocate("a", 100)
        r2 = amap.allocate("b", 5000)
        assert r1.base % PAGE_BYTES == 0
        assert r2.base % PAGE_BYTES == 0
        assert r2.base >= r1.base + 100
        assert r1.base > 0  # no region at address 0

    def test_duplicate_name_rejected(self):
        amap = AddressMap()
        amap.allocate("a", 10)
        with pytest.raises(ValueError, match="already allocated"):
            amap.allocate("a", 10)

    def test_region_of(self):
        amap = AddressMap()
        region = amap.allocate("a", 100)
        assert amap.region_of(region.base + 50).name == "a"
        with pytest.raises(KeyError):
            amap.region_of(region.base + 200)

    def test_dense_rows_line_aligned(self):
        amap = AddressMap()
        amap.allocate_dense("m", num_rows=10, dense_row_size=17)
        lines0 = amap.dense_row_lines("m", 0, 17)
        lines1 = amap.dense_row_lines("m", 1, 17)
        assert len(lines0) == 2  # 17 floats pad to 2 lines
        assert lines1[0] == lines0[-1] + 1  # rows contiguous

    def test_dense_row_base_lines_vectorised(self):
        amap = AddressMap()
        amap.allocate_dense("m", num_rows=10, dense_row_size=16)
        rows = np.array([0, 3, 7])
        bases = amap.dense_row_base_lines("m", rows, 16)
        for row, base in zip(rows, bases):
            assert base == amap.dense_row_lines("m", int(row), 16)[0]

    def test_stream_lines_bounds_checked(self):
        amap = AddressMap()
        amap.allocate("s", 1000)
        first, count = amap.stream_lines("s", 0, 1000)
        assert count == -(-1000 // 64)  # 16 lines cover 1000 bytes
        assert first == amap.regions["s"].base // 64
        with pytest.raises(ValueError, match="exceeds"):
            amap.stream_lines("s", 500, 600)


class TestDRAM:
    def test_traffic_accounting(self):
        dram = DRAMModel(peak_gbps=400, achievable_gbps=300, latency_ns=90)
        for _ in range(10):
            dram.read_line()
        for _ in range(5):
            dram.write_line()
        assert dram.accesses == 15
        assert dram.bytes_transferred == 15 * 64

    def test_service_time(self):
        dram = DRAMModel(peak_gbps=100, achievable_gbps=50, latency_ns=90)
        assert dram.service_time_ns(5000) == pytest.approx(100.0)

    def test_utilization(self):
        dram = DRAMModel(peak_gbps=100, achievable_gbps=50, latency_ns=90)
        for _ in range(100):
            dram.read_line()
        # 6400 bytes over 128 ns at 100 GB/s peak = 50% utilization.
        assert dram.utilization(128.0) == pytest.approx(0.5)
        assert dram.utilization(0.0) == 0.0


class TestSTLB:
    def test_same_page_hits(self):
        tlb = STLB(entries=4)
        assert not tlb.translate_line(0)
        assert tlb.translate_line(1)  # same 4 KB page
        assert tlb.miss_rate == pytest.approx(0.5)

    def test_capacity_eviction(self):
        tlb = STLB(entries=2)
        pages = [0, 64, 128]  # three distinct pages (64 lines/page)
        for p in pages:
            tlb.translate_line(p)
        assert not tlb.translate_line(0)  # evicted

    def test_walk_overhead(self):
        tlb = STLB(entries=4)
        tlb.translate_line(0)
        tlb.translate_line(64)
        assert tlb.walk_overhead_ns() == 2 * PAGE_WALK_LATENCY_NS


class TestStats:
    def test_level_stats_merge(self):
        a = LevelStats(hits=1, misses=2, writebacks=3)
        b = LevelStats(hits=10, misses=20, writebacks=30)
        m = a.merged(b)
        assert (m.hits, m.misses, m.writebacks) == (11, 22, 33)
        assert m.hit_rate == pytest.approx(11 / 33)

    def test_access_stats_merge_regions(self):
        a = AccessStats()
        a.record_region("x", 5)
        b = AccessStats()
        b.record_region("x", 2)
        b.record_region("y", 1)
        m = a.merged(b)
        assert m.by_region == {"x": 7, "y": 1}

    def test_hit_rate_zero_accesses(self):
        # Regression: no accesses must read as 0.0, not raise or NaN.
        assert LevelStats().hit_rate == 0.0

    def test_access_stats_merge_keeps_flushed_dirty_lines(self):
        # Regression: flushed_dirty_lines must survive merged().
        a = AccessStats(flushed_dirty_lines=4)
        b = AccessStats(flushed_dirty_lines=9)
        assert a.merged(b).flushed_dirty_lines == 13

    def test_merged_regions_do_not_alias_inputs(self):
        a = AccessStats()
        a.record_region("x", 1)
        m = a.merged(AccessStats())
        m.record_region("x", 100)
        assert a.by_region == {"x": 1}

    def test_summary_renders(self):
        text = AccessStats().summary()
        assert "L1" in text and "DRAM" in text


@pytest.fixture()
def mem() -> MemorySystem:
    return MemorySystem(scaled_config(4, cache_shrink=8))


class TestMemorySystem:
    def test_dense_miss_goes_to_dram(self, mem):
        assert mem.dense_access(0, 100) == ServiceLevel.DRAM
        assert mem.dram.reads == 1

    def test_dense_l1_hit(self, mem):
        mem.dense_access(0, 100)
        assert mem.dense_access(0, 100) == ServiceLevel.L1

    def test_l2_shared_between_group_pes(self, mem):
        # PEs 0 and 1 share an L2: PE1 hits in L2 on PE0's line.
        mem.dense_access(0, 100)
        assert mem.dense_access(1, 100) == ServiceLevel.L2

    def test_llc_shared_across_groups(self):
        # Two L2 groups (8 PEs / 4 per L2): PE 4's access to PE 0's
        # line misses its own L1 and L2 but hits the shared LLC.
        mem = MemorySystem(scaled_config(8, cache_shrink=8))
        mem.dense_access(0, 100)
        level = mem.dense_access(mem.config.memory.pes_per_l2, 100)
        assert level == ServiceLevel.LLC
        assert mem.dram.reads == 1  # served on-chip the second time

    def test_bypass_uses_victim_not_caches(self, mem):
        mem.dense_access(0, 200, bypass=True)
        assert mem.dense_access(0, 200, bypass=True) == ServiceLevel.VICTIM
        assert not mem.l1s[0].probe(200)

    def test_stream_bypasses_caches(self, mem):
        mem.stream_access(0, 300)
        assert not mem.l1s[0].probe(300)
        assert mem.bbfs[0].occupancy == 1

    def test_stream_write_counts_dram_write(self, mem):
        mem.stream_access(0, 300, is_write=True)
        assert mem.dram.writes == 1

    def test_cached_stream_pollutes_caches(self, mem):
        mem.cached_stream_access(0, 400)
        assert mem.l1s[0].probe(400)

    def test_flush_pe(self, mem):
        mem.dense_access(0, 1, is_write=True)
        mem.stream_access(0, 2, is_write=True)
        assert mem.flush_pe(0) >= 2

    def test_latency_ordering(self, mem):
        levels = [ServiceLevel.L1, ServiceLevel.L2, ServiceLevel.LLC,
                  ServiceLevel.DRAM]
        lats = [mem.latency_ns(lv) for lv in levels]
        assert lats == sorted(lats)
        assert mem.latency_ns(ServiceLevel.DRAM) > (
            mem.config.memory.link_latency_ns
        )

    def test_collect_stats_consistent(self, mem):
        for line in range(50):
            mem.dense_access(0, line, region="cmatrix")
        stats = mem.collect_stats()
        assert stats.l1.accesses == 50
        assert stats.dram_reads == stats.by_region.get("cmatrix", 0)

    def test_reset_stats(self, mem):
        mem.dense_access(0, 1)
        mem.reset_stats()
        stats = mem.collect_stats()
        assert stats.l1.accesses == 0
        assert stats.dram_accesses == 0

    def test_writeback_propagates_to_dram(self, mem):
        """Dirty lines evicted through the whole hierarchy must reach
        DRAM as writes."""
        l1_lines = mem.config.pe.l1d.num_lines
        l2_lines = mem.config.memory.l2.num_lines
        llc_lines = mem.llc.num_sets * mem.llc.ways
        total = (l1_lines + l2_lines + llc_lines) * 4
        for line in range(total):
            mem.dense_access(0, line, is_write=True)
        assert mem.dram.writes > 0
