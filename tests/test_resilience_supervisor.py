"""RunSupervisor: retry policy, watchdog, degradation ladder, and the
typed error taxonomy."""

from __future__ import annotations

import dataclasses
import time

import numpy as np
import pytest

from repro.config import (
    ResilienceConfig,
    TelemetryConfig,
    scaled_config,
)
from repro.core.accelerator import KernelSettings, SpadeSystem
from repro.errors import (
    ConfigError,
    EngineExecutionError,
    SpadeError,
    WatchdogTimeout,
    WorkloadError,
)
from repro.resilience import (
    DEGRADATION_LADDER,
    ChaosConfig,
    ChaosMonkey,
    InjectedFault,
    RunSupervisor,
)
from repro.sparse.generators import rmat_graph
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def workload():
    a = rmat_graph(scale=7, edge_factor=8, seed=3)
    b = np.random.default_rng(2).random((a.num_cols, 16), dtype=np.float32)
    return a, b


@pytest.fixture(scope="module")
def base_config():
    return scaled_config(4, cache_shrink=8)


@pytest.fixture(scope="module")
def scalar_oracle(workload, base_config):
    a, b = workload
    return SpadeSystem(base_config, execution="scalar").spmm(a, b)


def make_supervisor(sleeps=None, chaos=None, telemetry=None, **res):
    recorded = [] if sleeps is None else sleeps
    return RunSupervisor(
        resilience=ResilienceConfig(**res),
        telemetry=telemetry,
        chaos=chaos,
        sleep=recorded.append,
    )


class TestRetryPolicy:
    def test_transient_error_is_retried_with_backoff(self):
        sleeps = []
        sup = make_supervisor(
            sleeps, max_retries=3, backoff_base_s=0.1, backoff_factor=2.0
        )
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise EngineExecutionError("boom", pe_id=1, chunk_index=2)
            return "ok"

        assert sup.call(flaky) == "ok"
        assert len(calls) == 3
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_retries_exhausted_reraises_last_error(self):
        sup = make_supervisor(max_retries=2, backoff_base_s=0.0)
        calls = []

        def always_fails():
            calls.append(1)
            raise EngineExecutionError("boom")

        with pytest.raises(EngineExecutionError):
            sup.call(always_fails)
        assert len(calls) == 3

    def test_permanent_errors_are_not_retried(self):
        for exc_type in (ConfigError, WorkloadError):
            sup = make_supervisor(max_retries=5, backoff_base_s=0.0)
            calls = []

            def fails():
                calls.append(1)
                raise exc_type("bad input")

            with pytest.raises(exc_type):
                sup.call(fails)
            assert len(calls) == 1

    def test_retry_counter_lands_in_telemetry(self):
        telemetry = Telemetry(TelemetryConfig(metrics=True))
        sup = make_supervisor(
            telemetry=telemetry, max_retries=1, backoff_base_s=0.0
        )
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise EngineExecutionError("boom")
            return "ok"

        sup.call(flaky)
        assert telemetry.metrics.counter("spade_run_retries").value == 1


class TestWatchdog:
    def test_timeout_raises_watchdog(self):
        sup = RunSupervisor(
            resilience=ResilienceConfig(timeout_s=0.05), sleep=lambda s: None
        )
        with pytest.raises(WatchdogTimeout, match="wall-clock"):
            sup.call(lambda: time.sleep(10))

    def test_fast_call_passes_through(self):
        sup = RunSupervisor(resilience=ResilienceConfig(timeout_s=5.0))
        assert sup.call(lambda: 42) == 42

    def test_errors_propagate_through_watchdog(self):
        sup = RunSupervisor(resilience=ResilienceConfig(timeout_s=5.0))

        def fails():
            raise WorkloadError("bad shape")

        with pytest.raises(WorkloadError):
            sup.call(fails)


class TestDegradationLadder:
    def test_ladder_order(self):
        assert DEGRADATION_LADDER == ("pipelined", "vectorized", "scalar")

    def test_pipelined_faults_degrade_to_vectorized(
        self, workload, base_config, scalar_oracle
    ):
        a, b = workload
        telemetry = Telemetry(TelemetryConfig(metrics=True))
        monkey = ChaosMonkey(
            ChaosConfig(worker_fault_rate=1.0, fault_backends=("pipelined",))
        )
        sup = make_supervisor(
            chaos=monkey, telemetry=telemetry,
            max_retries=1, backoff_base_s=0.0,
        )
        cfg = dataclasses.replace(base_config, execution="pipelined")
        report = sup.run_kernel(cfg, "spmm", a, b)
        outcome = sup.last_outcome
        assert outcome.backend == "vectorized"
        assert outcome.degraded
        assert outcome.degradations == 1
        # pipelined: initial + 1 retry failed -> one of those retries
        # is counted; then vectorized succeeds first try.
        assert outcome.retries == 1
        np.testing.assert_array_equal(report.output, scalar_oracle.output)
        assert report.time_ns == scalar_oracle.time_ns
        m = telemetry.metrics
        assert m.counter("spade_backend_degradations").value == 1
        assert m.counter("spade_run_retries").value == 1

    def test_all_backends_faulty_degrades_to_scalar(
        self, workload, base_config, scalar_oracle
    ):
        a, b = workload
        monkey = ChaosMonkey(
            ChaosConfig(
                worker_fault_rate=1.0,
                fault_backends=("pipelined", "vectorized"),
            )
        )
        sup = make_supervisor(chaos=monkey, backoff_base_s=0.0)
        cfg = dataclasses.replace(base_config, execution="pipelined")
        report = sup.run_kernel(cfg, "spmm", a, b)
        assert sup.last_outcome.backend == "scalar"
        assert sup.last_outcome.degradations == 2
        np.testing.assert_array_equal(report.output, scalar_oracle.output)

    def test_degrade_disabled_raises_instead(self, workload, base_config):
        a, b = workload
        monkey = ChaosMonkey(
            ChaosConfig(worker_fault_rate=1.0, fault_backends=("pipelined",))
        )
        sup = make_supervisor(
            chaos=monkey, degrade=False, backoff_base_s=0.0
        )
        cfg = dataclasses.replace(base_config, execution="pipelined")
        with pytest.raises(EngineExecutionError):
            sup.run_kernel(cfg, "spmm", a, b)
        assert sup.last_outcome.backend == "pipelined"
        assert not sup.last_outcome.degradations

    def test_fault_budget_lets_retry_succeed_on_same_rung(
        self, workload, base_config, scalar_oracle
    ):
        a, b = workload
        monkey = ChaosMonkey(
            ChaosConfig(
                worker_faults=((0, 0),),
                max_worker_faults=1,
                fault_backends=("pipelined",),
            )
        )
        sup = make_supervisor(
            chaos=monkey, max_retries=2, backoff_base_s=0.0
        )
        cfg = dataclasses.replace(base_config, execution="pipelined")
        report = sup.run_kernel(cfg, "spmm", a, b)
        assert sup.last_outcome.backend == "pipelined"
        assert not sup.last_outcome.degraded
        assert sup.last_outcome.retries == 1
        np.testing.assert_array_equal(report.output, scalar_oracle.output)

    def test_scalar_request_has_one_rung(self, workload, base_config):
        a, b = workload
        monkey = ChaosMonkey(
            ChaosConfig(worker_fault_rate=1.0, fault_backends=("scalar",))
        )
        sup = make_supervisor(chaos=monkey, backoff_base_s=0.0)
        cfg = dataclasses.replace(base_config, execution="scalar")
        with pytest.raises(EngineExecutionError):
            sup.run_kernel(cfg, "spmm", a, b)
        assert sup.last_outcome.backend == "scalar"

    def test_unknown_kernel_is_config_error(self, workload, base_config):
        a, b = workload
        with pytest.raises(ConfigError, match="unknown kernel"):
            make_supervisor().run_kernel(base_config, "gemm", a, b)

    def test_retry_resumes_from_checkpoint(
        self, tmp_path, workload, base_config, scalar_oracle
    ):
        """A faulty first attempt leaves checkpoints behind; the retry
        picks them up (resume forced on) and still matches the oracle."""
        a, b = workload
        settings = KernelSettings(
            row_panel_size=32, col_panel_size=64, use_barriers=True
        )
        oracle = SpadeSystem(base_config).spmm(a, b, settings=settings)
        monkey = ChaosMonkey(
            ChaosConfig(
                worker_faults=((1, 1),),
                max_worker_faults=1,
                fault_backends=("vectorized",),
            )
        )
        sup = make_supervisor(
            chaos=monkey,
            max_retries=1,
            backoff_base_s=0.0,
            checkpoint_dir=str(tmp_path),
        )
        cfg = dataclasses.replace(base_config, execution="vectorized")
        report = sup.run_kernel(cfg, "spmm", a, b, settings=settings)
        assert sup.last_outcome.retries == 1
        np.testing.assert_array_equal(report.output, oracle.output)
        assert report.time_ns == oracle.time_ns


class TestErrorTaxonomy:
    def test_worker_fault_is_typed_with_location(
        self, workload, base_config
    ):
        a, b = workload
        monkey = ChaosMonkey(
            ChaosConfig(
                worker_faults=((0, 0),), fault_backends=("pipelined",)
            )
        )
        cfg = dataclasses.replace(base_config, execution="pipelined")
        with pytest.raises(EngineExecutionError) as excinfo:
            SpadeSystem(cfg, chaos=monkey).spmm(a, b)
        err = excinfo.value
        assert err.pe_id == 0
        assert err.chunk_index == 0
        assert "pe=0" in str(err) and "chunk=0" in str(err)
        assert isinstance(err.__cause__, InjectedFault)

    def test_serial_backend_faults_are_typed_too(
        self, workload, base_config
    ):
        a, b = workload
        monkey = ChaosMonkey(
            ChaosConfig(
                worker_faults=((0, 0),), fault_backends=("vectorized",)
            )
        )
        cfg = dataclasses.replace(base_config, execution="vectorized")
        with pytest.raises(EngineExecutionError) as excinfo:
            SpadeSystem(cfg, chaos=monkey).spmm(a, b)
        assert excinfo.value.pe_id == 0
        assert excinfo.value.chunk_index == 0
        assert isinstance(excinfo.value.__cause__, InjectedFault)

    def test_engine_execution_error_is_runtime_error(self):
        assert issubclass(EngineExecutionError, RuntimeError)
        assert issubclass(EngineExecutionError, SpadeError)

    def test_shape_validation_is_workload_error(
        self, workload, base_config
    ):
        a, _ = workload
        bad_b = np.ones((a.num_cols + 1, 8), dtype=np.float32)
        system = SpadeSystem(base_config)
        with pytest.raises(WorkloadError, match="B must be"):
            system.spmm(a, bad_b)
        # Back-compat: still catchable as ValueError.
        with pytest.raises(ValueError):
            system.spmm(a, bad_b)

    def test_sddmm_shape_validation(self, workload, base_config):
        a, b = workload
        system = SpadeSystem(base_config)
        b_r = np.ones((a.num_rows, 16), dtype=np.float32)
        with pytest.raises(WorkloadError, match="C must be"):
            system.sddmm(a, b_r, np.ones((3, 16), dtype=np.float32))
        with pytest.raises(WorkloadError, match="share the dense row"):
            system.sddmm(
                a, b_r, np.ones((a.num_cols, 8), dtype=np.float32)
            )

    def test_config_error_is_value_error(self):
        with pytest.raises(ConfigError):
            ResilienceConfig(checkpoint_interval=0)
        with pytest.raises(ValueError):
            ResilienceConfig(resume=True)  # resume without a directory


class TestCombinedReplayLadder:
    """Execution and replay ladders degrade in lock-step."""

    def test_rungs_from_the_top(self):
        sup = make_supervisor()
        assert sup._ladder("pipelined", "array") == (
            ("pipelined", "array"),
            ("vectorized", "batched"),
            ("scalar", "scalar"),
        )

    def test_rungs_from_the_middle(self):
        sup = make_supervisor()
        assert sup._ladder("vectorized", "batched") == (
            ("vectorized", "batched"),
            ("scalar", "scalar"),
        )

    def test_shorter_ladder_is_padded_with_its_last_rung(self):
        sup = make_supervisor()
        assert sup._ladder("scalar", "array") == (
            ("scalar", "array"),
            ("scalar", "batched"),
            ("scalar", "scalar"),
        )
        assert sup._ladder("pipelined", "scalar") == (
            ("pipelined", "scalar"),
            ("vectorized", "scalar"),
            ("scalar", "scalar"),
        )

    def test_degrade_disabled_keeps_one_rung(self):
        sup = make_supervisor(degrade=False)
        assert sup._ladder("pipelined", "array") == (
            ("pipelined", "array"),
        )

    def test_outcome_degraded_when_only_replay_stepped(self):
        from repro.resilience import RunOutcome

        outcome = RunOutcome(
            backend="scalar", requested_backend="scalar",
            attempts=2, retries=0, degradations=1,
            replay="batched", requested_replay="array",
        )
        assert outcome.degraded

    def test_faulty_rung_steps_replay_mode_too(
        self, workload, base_config, scalar_oracle
    ):
        a, b = workload
        monkey = ChaosMonkey(
            ChaosConfig(worker_fault_rate=1.0, fault_backends=("pipelined",))
        )
        sup = make_supervisor(chaos=monkey, backoff_base_s=0.0)
        cfg = dataclasses.replace(
            base_config, execution="pipelined", replay="array"
        )
        report = sup.run_kernel(cfg, "spmm", a, b)
        outcome = sup.last_outcome
        assert outcome.backend == "vectorized"
        assert outcome.replay == "batched"
        assert outcome.requested_replay == "array"
        assert outcome.degraded
        # Degrading never changes results.
        np.testing.assert_array_equal(report.output, scalar_oracle.output)
        assert report.time_ns == scalar_oracle.time_ns

    def test_successful_run_records_requested_replay(
        self, workload, base_config, scalar_oracle
    ):
        a, b = workload
        sup = make_supervisor()
        cfg = dataclasses.replace(base_config, replay="array")
        report = sup.run_kernel(cfg, "spmm", a, b)
        outcome = sup.last_outcome
        assert outcome.replay == "array"
        assert outcome.requested_replay == "array"
        assert not outcome.degraded
        np.testing.assert_array_equal(report.output, scalar_oracle.output)
