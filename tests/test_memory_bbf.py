"""Unit tests for the Bypass Buffer and its victim cache."""

import pytest

from repro.config import CacheConfig
from repro.memory.bbf import BypassBuffer


def make_bbf(entries=4) -> BypassBuffer:
    return BypassBuffer(
        entries, CacheConfig(size_bytes=1024, associativity=2)
    )


class TestStreamBuffer:
    def test_requires_capacity(self):
        with pytest.raises(ValueError):
            make_bbf(entries=0)

    def test_sequential_stream_fetches_each_line_once(self):
        bbf = make_bbf()
        for line in range(100):
            assert not bbf.stream_access(line)
        assert bbf.stream_misses == 100
        assert bbf.stream_hits == 0

    def test_repeated_line_within_window_hits(self):
        bbf = make_bbf(entries=4)
        bbf.stream_access(0)
        assert bbf.stream_access(0)
        assert bbf.stream_hits == 1

    def test_lru_window(self):
        bbf = make_bbf(entries=2)
        bbf.stream_access(0)
        bbf.stream_access(1)
        bbf.stream_access(2)  # evicts 0
        assert not bbf.stream_access(0)

    def test_dirty_stream_eviction_counts_writeback(self):
        bbf = make_bbf(entries=1)
        bbf.stream_access(0, is_write=True)
        bbf.stream_access(1)
        assert bbf.writebacks == 1

    def test_occupancy_bounded(self):
        bbf = make_bbf(entries=3)
        for line in range(10):
            bbf.stream_access(line)
        assert bbf.occupancy <= 3


class TestVictimCache:
    def test_victim_reuse(self):
        bbf = make_bbf()
        hit, _ = bbf.victim_access(7)
        assert not hit
        hit, _ = bbf.victim_access(7)
        assert hit

    def test_victim_spill_to_dram(self):
        """Overflowing the victim cache with dirty lines spills to main
        memory — the mechanism behind the KRO bypass outlier (Table 6)."""
        bbf = make_bbf()
        capacity = bbf.victim.num_sets * bbf.victim.ways
        spills = 0
        for line in range(capacity * 3):
            _, evicted = bbf.victim_access(line, is_write=True)
            if evicted is not None:
                spills += 1
        assert spills > 0

    def test_flush_covers_both_structures(self):
        bbf = make_bbf()
        bbf.stream_access(0, is_write=True)
        bbf.victim_access(1, is_write=True)
        assert bbf.flush() == 2
        assert bbf.occupancy == 0
        assert not bbf.victim.probe(1)

    def test_reset_stats(self):
        bbf = make_bbf()
        bbf.stream_access(0)
        bbf.victim_access(1)
        bbf.reset_stats()
        assert bbf.stream_hits == bbf.stream_misses == 0
        assert bbf.victim.accesses == 0
