"""Unit tests for the COO format."""

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self, tiny_matrix):
        dense = tiny_matrix.to_dense()
        again = COOMatrix.from_dense(dense)
        assert again == tiny_matrix

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            COOMatrix.from_dense(np.ones(4))

    def test_from_edges_sums_duplicates(self):
        edges = np.array([[0, 1], [0, 1], [2, 3]])
        vals = np.array([1.0, 2.0, 5.0], dtype=np.float32)
        m = COOMatrix.from_edges(4, 4, edges, vals)
        assert m.nnz == 2
        assert m.to_dense()[0, 1] == pytest.approx(3.0)
        assert m.to_dense()[2, 3] == pytest.approx(5.0)

    def test_from_edges_default_values_are_ones(self):
        m = COOMatrix.from_edges(3, 3, np.array([[0, 0], [1, 2]]))
        assert set(np.unique(m.vals)) == {1.0}

    def test_from_edges_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(nnz, 2\)"):
            COOMatrix.from_edges(3, 3, np.array([0, 1, 2]))

    def test_from_scipy(self, tiny_matrix):
        sp = tiny_matrix.to_scipy()
        assert COOMatrix.from_scipy(sp) == tiny_matrix


class TestValidation:
    def test_rejects_row_out_of_range(self):
        with pytest.raises(ValueError, match="row index"):
            COOMatrix(2, 2, np.array([2]), np.array([0]), np.array([1.0]))

    def test_rejects_col_out_of_range(self):
        with pytest.raises(ValueError, match="column index"):
            COOMatrix(2, 2, np.array([0]), np.array([5]), np.array([1.0]))

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, np.array([-1]), np.array([0]), np.array([1.0]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            COOMatrix(
                2, 2, np.array([0, 1]), np.array([0]), np.array([1.0])
            )

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            COOMatrix(
                2, 2, np.array([0, 0]), np.array([1, 1]),
                np.array([1.0, 2.0]),
            )

    def test_empty_matrix_is_valid(self):
        m = COOMatrix(3, 3, np.array([]), np.array([]), np.array([]))
        assert m.nnz == 0
        assert m.density == 0.0


class TestOperations:
    def test_sorted_by_row(self, small_graph):
        s = small_graph.sorted_by_row()
        keys = s.r_ids * s.num_cols + s.c_ids
        assert np.all(np.diff(keys) > 0)
        assert s == small_graph

    def test_transpose_involution(self, random_rect):
        t = random_rect.transpose()
        assert t.shape == (random_rect.num_cols, random_rect.num_rows)
        assert t.transpose() == random_rect

    def test_transpose_dense_agrees(self, random_rect):
        np.testing.assert_allclose(
            random_rect.transpose().to_dense(), random_rect.to_dense().T
        )

    def test_row_col_counts_sum_to_nnz(self, small_graph):
        assert small_graph.row_nnz_counts().sum() == small_graph.nnz
        assert small_graph.col_nnz_counts().sum() == small_graph.nnz

    def test_iter_entries_matches_arrays(self, tiny_matrix):
        entries = list(tiny_matrix.iter_entries())
        assert len(entries) == tiny_matrix.nnz
        r, c, v = entries[0]
        assert tiny_matrix.to_dense()[r, c] == pytest.approx(v)

    def test_footprint_bytes(self, tiny_matrix):
        assert tiny_matrix.footprint_bytes() == tiny_matrix.nnz * 12
        assert tiny_matrix.footprint_bytes(index_bytes=8) == (
            tiny_matrix.nnz * 20
        )

    def test_equality_ignores_storage_order(self, tiny_matrix):
        perm = np.random.default_rng(0).permutation(tiny_matrix.nnz)
        shuffled = COOMatrix(
            tiny_matrix.num_rows,
            tiny_matrix.num_cols,
            tiny_matrix.r_ids[perm],
            tiny_matrix.c_ids[perm],
            tiny_matrix.vals[perm],
        )
        assert shuffled == tiny_matrix

    def test_inequality_different_values(self, tiny_matrix):
        other = COOMatrix(
            tiny_matrix.num_rows,
            tiny_matrix.num_cols,
            tiny_matrix.r_ids,
            tiny_matrix.c_ids,
            tiny_matrix.vals * 2,
        )
        assert other != tiny_matrix

    def test_repr_contains_shape_and_nnz(self, tiny_matrix):
        text = repr(tiny_matrix)
        assert "4x4" in text
        assert "nnz=7" in text
