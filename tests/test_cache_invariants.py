"""Cache-layer invariants, checked against BOTH replay implementations.

A parametrized "driver" fixture feeds each randomized trace through
either the scalar ``Cache.access`` loop or the batched
``Cache.access_many`` call, then asserts the structural invariants that
every set-associative write-back cache must satisfy:

* ``hits + misses == accesses`` (and ``fills == misses``);
* ``occupancy() <= num_sets * ways`` at all times;
* ``flush()`` leaves zero dirty lines, zero occupancy, and returns
  exactly the number of dirty lines it wrote back;
* ``probe()`` / ``invalidate()`` never perturb LRU order or counters.

The second half pins the §7.D epoch-boundary flush accounting:
flush-path writebacks must flow through ``Cache.writebacks``,
``Cache.flush_writebacks`` and ``AccessStats.flushed_dirty_lines``
consistently (regression for the flush-count propagation fix).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CacheConfig, scaled_config
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemorySystem

GEOM = CacheConfig(size_bytes=8 * 1024, associativity=4)  # 32 sets


def scalar_driver(cache: Cache, lines, writes) -> None:
    for line, w in zip(lines.tolist(), writes.tolist()):
        cache.access(line, w)


def batched_driver(cache: Cache, lines, writes) -> None:
    cache.access_many(lines, writes)


@pytest.fixture(params=["scalar", "batched"])
def driver(request):
    return scalar_driver if request.param == "scalar" else batched_driver


def make_trace(seed, n=5000, num_lines=1 << 12, p_write=0.35):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, num_lines, size=n),
        rng.random(n) < p_write,
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_accounting_identity(driver, seed):
    cache = Cache(GEOM)
    lines, writes = make_trace(seed)
    driver(cache, lines, writes)
    assert cache.hits + cache.misses == cache.accesses == lines.shape[0]
    assert cache.fills == cache.misses
    assert 0.0 <= cache.hit_rate <= 1.0


@pytest.mark.parametrize("seed", [3, 4])
def test_capacity_never_exceeded(driver, seed):
    cache = Cache(GEOM)
    lines, writes = make_trace(seed, num_lines=1 << 15)
    capacity = cache.num_sets * cache.ways
    for lo in range(0, lines.shape[0], 250):
        driver(cache, lines[lo:lo + 250], writes[lo:lo + 250])
        assert cache.occupancy() <= capacity
        assert cache.dirty_lines() <= cache.occupancy()
    # A footprint much larger than capacity must fill it completely.
    assert cache.occupancy() == capacity


def test_flush_returns_exact_dirty_count(driver):
    cache = Cache(GEOM)
    lines, writes = make_trace(7, num_lines=512)
    driver(cache, lines, writes)
    dirty_before = cache.dirty_lines()
    demand_wb = cache.writebacks
    assert dirty_before > 0
    flushed = cache.flush()
    assert flushed == dirty_before
    assert cache.dirty_lines() == 0
    assert cache.occupancy() == 0
    assert cache.flush_writebacks == flushed
    assert cache.writebacks == demand_wb + flushed
    # Double flush: nothing left to write back.
    assert cache.flush() == 0
    assert cache.flush_writebacks == flushed


def test_probe_and_invalidate_do_not_perturb(driver):
    cache = Cache(GEOM)
    lines, writes = make_trace(11, num_lines=256)
    driver(cache, lines, writes)
    snap_counters = (cache.hits, cache.misses, cache.writebacks, cache.fills)
    snap_state = [list(s.items()) for s in cache._sets]

    for line in range(0, 1 << 10, 7):
        cache.probe(line)
    assert (cache.hits, cache.misses, cache.writebacks, cache.fills) == snap_counters
    assert [list(s.items()) for s in cache._sets] == snap_state

    # invalidate() drops lines but never touches the access counters,
    # and removal preserves the relative LRU order of the survivors.
    victims = [s_items[0][0] for s_items in snap_state if s_items]
    for line in victims:
        cache.invalidate(line)
    assert (cache.hits, cache.misses, cache.writebacks, cache.fills) == snap_counters
    expected = [
        [item for item in s_items if item[0] not in victims]
        for s_items in snap_state
    ]
    assert [list(s.items()) for s in cache._sets] == expected


def test_invalidate_reports_dirtiness():
    cache = Cache(GEOM)
    cache.access(5, is_write=True)
    cache.access(6, is_write=False)
    assert cache.invalidate(5) is True
    assert cache.invalidate(6) is False
    assert cache.invalidate(12345) is False


# ---------------------------------------------------------------------------
# §7.D flush accounting through the full hierarchy (regression)
# ---------------------------------------------------------------------------


def dirty_everything(ms: MemorySystem, replay: str):
    """Spread dirty lines over L1s, L2 (via spills), BBFs and victims."""
    rng = np.random.default_rng(13)
    for pe in range(len(ms.l1s)):
        lines = rng.integers(0, 1 << 12, size=1500)
        if replay == "batched":
            ms.dense_access_many(pe, lines, is_write=True, region="rmatrix")
            ms.dense_access_many(
                pe, lines[:200], is_write=True, bypass=True, region="rmatrix"
            )
            ms.stream_access_many(
                pe, np.arange(pe * 100, pe * 100 + 50),
                is_write=True, region="sparse_out",
            )
        else:
            for line in lines.tolist():
                ms.dense_access(pe, line, is_write=True, region="rmatrix")
            for line in lines[:200].tolist():
                ms.dense_access(
                    pe, line, is_write=True, bypass=True, region="rmatrix"
                )
            for line in range(pe * 100, pe * 100 + 50):
                ms.stream_access(pe, line, is_write=True, region="sparse_out")


@pytest.mark.parametrize("replay", ["scalar", "batched"])
def test_flush_all_propagates_into_access_stats(replay):
    ms = MemorySystem(scaled_config(4, cache_shrink=8))
    dirty_everything(ms, replay)
    assert ms.collect_stats().flushed_dirty_lines == 0

    total_dirty = (
        sum(c.dirty_lines() for c in ms.l1s)
        + sum(c.dirty_lines() for c in ms.l2s)
        + ms.llc.dirty_lines()
        + sum(sum(1 for d in b._buffer.values() if d) for b in ms.bbfs)
        + sum(b.victim.dirty_lines() for b in ms.bbfs)
    )
    assert total_dirty > 0

    flushed = ms.flush_all()
    assert flushed == total_dirty

    stats = ms.collect_stats()
    assert stats.flushed_dirty_lines == flushed
    # Demand writebacks and flush writebacks both live in the per-level
    # writeback counters; the flush share is recoverable exactly.
    total_wb = (
        sum(c.writebacks for c in ms.l1s + ms.l2s)
        + ms.llc.writebacks
        + sum(b.writebacks + b.victim.writebacks for b in ms.bbfs)
    )
    total_flush_wb = (
        sum(c.flush_writebacks for c in ms.l1s + ms.l2s)
        + ms.llc.flush_writebacks
        + sum(
            b.flush_writebacks + b.victim.flush_writebacks for b in ms.bbfs
        )
    )
    assert total_flush_wb == flushed
    assert total_wb >= total_flush_wb

    # Nothing dirty remains anywhere; a second flush is a no-op.
    assert ms.flush_all() == 0
    assert ms.collect_stats().flushed_dirty_lines == flushed


def test_stats_merge_carries_flushed_dirty_lines():
    ms = MemorySystem(scaled_config(4, cache_shrink=8))
    dirty_everything(ms, "batched")
    ms.flush_all()
    stats = ms.collect_stats()
    merged = stats.merged(stats)
    assert merged.flushed_dirty_lines == 2 * stats.flushed_dirty_lines
