"""Unit tests for the benchmark harness and experiment smoke tests.

Full experiments run under benchmarks/; here we check the harness
plumbing and run tiny-scale smoke versions of each experiment driver.
"""

import numpy as np
import pytest

from repro.bench import fig02, fig09, fig11, fig12, fig13, fig14
from repro.bench import sec7d, sec7g, table5, table6
from repro.bench.harness import (
    BenchEnvironment,
    dense_input,
    format_table,
    geomean,
    suite_matrix,
)

TINY_ENV = BenchEnvironment(
    scale="tiny", num_pes=2, opt_mode="quick",
    cache_shrink=8.0, row_panel_divisor=8,
)


class TestHarness:
    def test_ratio(self):
        assert TINY_ENV.ratio == pytest.approx(2 / 224)

    def test_spade_config_factors(self):
        c1 = TINY_ENV.spade_config(1)
        c2 = TINY_ENV.spade_config(2)
        assert c2.num_pes == 2 * c1.num_pes

    def test_base_settings_scaled_rp(self):
        assert TINY_ENV.base_settings().row_panel_size == 32

    def test_suite_matrix_memoised(self):
        a = suite_matrix("ASI", "tiny")
        b = suite_matrix("ASI", "tiny")
        assert a is b

    def test_dense_input_deterministic(self):
        x = dense_input(100, 8)
        y = dense_input(100, 8)
        np.testing.assert_array_equal(x, y)
        assert x.dtype == np.float32

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_format_table(self):
        text = format_table(
            ["a", "bb"], [[1, 2.5], [10, 0.001]], title="T"
        )
        assert text.startswith("T\n")
        assert "bb" in text

    def test_models_constructible(self):
        assert TINY_ENV.cpu_model() is not None
        assert TINY_ENV.gpu_model() is not None
        assert TINY_ENV.sextans_model() is not None


class TestExperimentSmoke:
    """Each experiment driver runs end-to-end at tiny scale."""

    def test_fig02(self):
        rows = fig02.run(TINY_ENV)
        assert len(rows) == 20  # 10 matrices x 2 K values
        assert fig02.format_result(rows)

    def test_fig09(self):
        rows = fig09.run(
            TINY_ENV, kernels=("spmm",), k_values=(32,),
            matrices=["ASI", "KRO"],
        )
        assert len(rows) == 2
        assert all(r.spade_base > 0 for r in rows)
        assert fig09.format_result(rows)

    def test_fig11(self):
        maps = fig11.run(TINY_ENV, matrices=("KRO",))
        assert maps[0].matrix == "KRO"
        assert max(maps[0].normalized_time.values()) == pytest.approx(1.0)
        assert fig11.format_result(maps)

    def test_table5(self):
        rows = table5.run(
            TINY_ENV, kernels=("spmm",), k_values=(32,),
            matrices=("ASI",),
        )
        assert len(rows) == 1
        assert table5.format_result(rows)

    def test_table6(self):
        rows = table6.run(
            TINY_ENV, kernels=("spmm",), k_values=(32,),
            matrices=("DEL",),
        )
        assert len(rows) == 1
        assert table6.format_result(rows)

    def test_fig12(self):
        rows = fig12.run(TINY_ENV, matrices=("ASI",), factors=(2,))
        assert rows[0].speedups[2] > 0
        assert fig12.format_result(rows)

    def test_fig13(self):
        rows = fig13.run(TINY_ENV, matrices=("ASI", "KRO"))
        assert len(rows) == 2
        assert fig13.format_result(rows)
        assert fig13.summary(rows)["mean_speedup"] > 0

    def test_fig14(self):
        rows = fig14.run(TINY_ENV, matrices=("ASI",))
        assert sum(rows[0].fractions.values()) == pytest.approx(1.0)
        assert fig14.format_result(rows)

    def test_sec7d(self):
        rows = sec7d.run(TINY_ENV, kernels=("spmm",), matrices=("ASI",))
        assert rows[0].spade_mode_ns > 0
        assert sec7d.format_result(rows)

    def test_sec7g(self):
        result = sec7g.run()
        assert result.area_error < 0.10
        assert sec7g.format_result(result)
