"""Differential parity: array replay vs the scalar oracle and batched.

The array-native replay backend (``replay="array"``,
``repro.memory.replay_array``) reconstructs per-access hit/miss
outcomes from stack distances over whole trace partitions instead of
walking the LRU dicts access by access.  It must be *bit-identical* to
the scalar oracle — same AccessStats counters at every level, same
per-access service levels, same LRU orders and dirty bits, same kernel
outputs — under every execution backend, bypass configuration, and
barrier schedule.  These tests run the same traces and kernels through
all three replay modes and require exact equality.

Two layers:

* **MemorySystem traces** — randomized interleaved dense/bypass/stream
  op traces at L1-resident, L2-resident, and DRAM-heavy footprints,
  with the array path both auto-dispatched and force-engaged (cost
  model disabled) so the NumPy solver itself is exercised, not just
  its fallback.
* **End-to-end kernels** — SpMM and SDDMM through ``SpadeSystem`` on
  all execution backends (scalar, vectorized, pipelined), with bypass
  on/off and a barrier-heavy schedule, comparing the full stats
  surface plus an output digest.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.config import scaled_config
from repro.core.accelerator import KernelSettings, SpadeSystem
from repro.memory.hierarchy import MemorySystem
from repro.sparse.generators import rmat_graph, uniform_random
import repro.memory.replay_array as replay_array

from tests.test_memory_batched_parity import (
    random_op_trace,
    scalar_system_replay,
    system_state,
)

REPLAY_MODES = ("scalar", "batched", "array")


@pytest.fixture
def force_array(monkeypatch):
    """Disable the cost model so every partition runs the NumPy solver.

    ``ARRAY_MIN_EVENTS=0`` removes the small-partition floor and an
    absurd per-access python cost makes the planner always pick the
    array path (and never bail out of it).  Dispatch heuristics change
    speed, never results — this fixture makes sure the solver itself
    is what we are testing.
    """
    monkeypatch.setattr(replay_array, "ARRAY_MIN_EVENTS", 0)
    monkeypatch.setattr(replay_array, "_PY_HIT_US", 1e9)


# ---------------------------------------------------------------------------
# MemorySystem trace parity
# ---------------------------------------------------------------------------


def _three_way(footprint: int, chunks: int = 6, n: int = 2500):
    cfg = scaled_config(4, cache_shrink=8)
    cfg_a = dataclasses.replace(cfg, replay="array")
    ms_s = MemorySystem(cfg)
    ms_b = MemorySystem(cfg)
    ms_a = MemorySystem(cfg_a)
    rng = np.random.default_rng(footprint)
    for chunk_idx in range(chunks):
        pe_id = int(rng.integers(0, cfg.num_pes))
        lines, ops = random_op_trace(rng, n, footprint)
        lv_s = scalar_system_replay(ms_s, pe_id, lines, ops)
        lv_b = ms_b.replay_trace(pe_id, lines, ops)
        lv_a = ms_a.replay_trace(pe_id, lines, ops)
        assert np.array_equal(lv_s, lv_b), (
            f"batched levels diverged in chunk {chunk_idx}"
        )
        assert np.array_equal(lv_s, lv_a), (
            f"array levels diverged in chunk {chunk_idx}"
        )
    stats_s = dataclasses.asdict(ms_s.collect_stats())
    assert stats_s == dataclasses.asdict(ms_b.collect_stats())
    assert stats_s == dataclasses.asdict(ms_a.collect_stats())
    assert system_state(ms_s) == system_state(ms_b)
    assert system_state(ms_s) == system_state(ms_a)
    return ms_s, ms_a


@pytest.mark.parametrize(
    "footprint", [64, 512, 1 << 13, 1 << 17],
    ids=["tiny", "l1_resident", "l2_resident", "dram_heavy"],
)
def test_replay_trace_parity_auto(footprint):
    """Auto dispatch: whatever mix of array solves and python
    fallbacks the cost model picks, results match the oracle."""
    _three_way(footprint)


@pytest.mark.parametrize(
    "footprint", [64, 512, 1 << 13, 1 << 17],
    ids=["tiny", "l1_resident", "l2_resident", "dram_heavy"],
)
def test_replay_trace_parity_forced(footprint, force_array):
    """Forced dispatch: every partition goes through the NumPy solver
    (small-footprint fast path and dominance path both engage)."""
    _three_way(footprint)


def test_replay_then_flush_parity(force_array):
    """Flush after array replay: identical dirty lines, writebacks,
    and flush accounting."""
    ms_s, ms_a = _three_way(4096, chunks=3, n=4000)
    assert ms_s.flush_all() == ms_a.flush_all()
    assert dataclasses.asdict(ms_s.collect_stats()) == dataclasses.asdict(
        ms_a.collect_stats()
    )


# ---------------------------------------------------------------------------
# End-to-end kernel parity through SpadeSystem
# ---------------------------------------------------------------------------

K = 16

SETTINGS = {
    "default": None,
    "bypass_off": KernelSettings(
        rmatrix_bypass=False,
        sparse_stream_bypass=False,
        sddmm_output_bypass=False,
    ),
    "bypass_on": KernelSettings(rmatrix_bypass=True),
    "barrier_heavy": KernelSettings(
        row_panel_size=32,
        col_panel_size=32,
        use_barriers=True,
        barrier_group_cols=2,
    ),
}


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=8, edge_factor=8, seed=42)


@pytest.fixture(scope="module")
def rect():
    return uniform_random(num_rows=256, num_cols=192, nnz=6_000, seed=13)


def _run(a, kernel, replay, execution="vectorized", settings=None):
    cfg = dataclasses.replace(
        scaled_config(4, cache_shrink=8),
        replay=replay,
        execution=execution,
    )
    system = SpadeSystem(cfg)
    rng = np.random.default_rng(7)
    if kernel == "spmm":
        b = rng.random((a.num_cols, K), dtype=np.float32)
        return system.spmm(a, b, settings=settings)
    b = rng.random((a.num_rows, K), dtype=np.float32)
    c = rng.random((a.num_cols, K), dtype=np.float32)
    return system.sddmm(a, b, c, settings=settings)


def _fingerprint(report) -> dict:
    """The full comparison surface: simulated time, every AccessStats
    counter, merged PE counters, and the raw output bytes."""
    result = report.result
    out = (
        result.output_dense
        if result.output_dense is not None
        else result.output_vals
    )
    return {
        "time_ns": result.time_ns,
        "stats": dataclasses.asdict(result.stats),
        "counters": dataclasses.asdict(result.counters),
        "dirty_lines_flushed": result.dirty_lines_flushed,
        "epochs": len(result.epoch_timings),
        "output_sha256": hashlib.sha256(
            np.ascontiguousarray(out).tobytes()
        ).hexdigest(),
    }


@pytest.mark.parametrize("settings_name", sorted(SETTINGS))
@pytest.mark.parametrize("kernel", ["spmm", "sddmm"])
def test_replay_modes_identical_end_to_end(
    graph, rect, kernel, settings_name
):
    """scalar == batched == array on the full stats + output surface,
    across bypass configurations and a barrier-heavy schedule."""
    a = graph if kernel == "spmm" else rect
    settings = SETTINGS[settings_name]
    want = _fingerprint(_run(a, kernel, "scalar", settings=settings))
    for replay in ("batched", "array"):
        got = _fingerprint(_run(a, kernel, replay, settings=settings))
        assert got == want, f"{kernel}/{settings_name}[{replay}]"


@pytest.mark.parametrize(
    "execution", ["scalar", "vectorized", "pipelined"]
)
@pytest.mark.parametrize("kernel", ["spmm", "sddmm"])
def test_array_replay_under_all_execution_backends(
    graph, rect, kernel, execution
):
    """The array backend composes with every execution backend; the
    (scalar, scalar) combination is the reference oracle."""
    a = graph if kernel == "spmm" else rect
    want = _fingerprint(_run(a, kernel, "scalar", execution="scalar"))
    got = _fingerprint(_run(a, kernel, "array", execution=execution))
    assert got == want, f"{kernel}[{execution}+array]"


def test_forced_array_end_to_end(graph, force_array):
    """Even with the cost model pinned to the NumPy solver the kernel
    run is bit-identical to the oracle."""
    want = _fingerprint(_run(graph, "spmm", "scalar"))
    got = _fingerprint(_run(graph, "spmm", "array"))
    assert got == want
