"""Suite-wide integration battery: every Table 2 matrix, both kernels,
multiple settings, all verified against the golden kernels at tiny
scale."""

import numpy as np
import pytest

from repro import KernelSettings, SpadeSystem, sddmm_output_to_coo
from repro.config import scaled_config
from repro.kernels import sddmm_reference, spmm_reference
from repro.sparse.suite import suite_names, get_benchmark
from repro.sparse.tiled import tile_matrix


@pytest.fixture(scope="module")
def system():
    return SpadeSystem(scaled_config(4, cache_shrink=16))


def _operands(a, k=16):
    rng = np.random.default_rng(a.nnz)
    b = rng.random((a.num_cols, k), dtype=np.float32)
    b_r = rng.random((a.num_rows, k), dtype=np.float32)
    return b, b_r


@pytest.mark.parametrize("name", suite_names())
class TestWholeSuite:
    def test_spmm_exact(self, system, name):
        a = get_benchmark(name).build("tiny")
        b, _ = _operands(a)
        rep = system.spmm(a, b)
        np.testing.assert_allclose(
            rep.output, spmm_reference(a, b), rtol=1e-4, atol=1e-4
        )

    def test_sddmm_exact(self, system, name):
        a = get_benchmark(name).build("tiny")
        b, b_r = _operands(a)
        settings = KernelSettings(row_panel_size=32, col_panel_size=64)
        rep = system.sddmm(a, b_r, b, settings)
        tiled = tile_matrix(a, 32, 64)
        got = sddmm_output_to_coo(tiled, rep.output)
        assert got == sddmm_reference(a, b_r, b)

    def test_settings_never_change_results(self, system, name):
        """Flexibility knobs are performance-only: three very different
        settings must agree bit-for-bit after float32 rounding."""
        a = get_benchmark(name).build("tiny")
        b, _ = _operands(a)
        outputs = [
            system.spmm(a, b, s).output
            for s in (
                KernelSettings(),
                KernelSettings(
                    row_panel_size=8, col_panel_size=16,
                    use_barriers=True,
                ),
                KernelSettings(rmatrix_bypass=True),
            )
        ]
        np.testing.assert_allclose(
            outputs[0], outputs[1], rtol=1e-5, atol=1e-5
        )
        np.testing.assert_allclose(
            outputs[0], outputs[2], rtol=1e-5, atol=1e-5
        )

    def test_traffic_sanity(self, system, name):
        """Physical sanity: DRAM reads cannot exceed issued requests,
        and the sparse stream traffic matches its footprint."""
        a = get_benchmark(name).build("tiny")
        b, _ = _operands(a)
        rep = system.spmm(a, b)
        assert rep.stats.dram_reads <= rep.counters.total_requests
        sparse_lines = rep.counters.sparse_line_reads
        assert sparse_lines >= 3 * a.nnz * 4 // 64
