"""Unit tests for the Table 2 benchmark suite and structural analysis."""

import numpy as np
import pytest

from repro.sparse.analysis import estimate_ru, reuse_stats, working_set_bytes
from repro.sparse.suite import (
    RU,
    SUITE,
    benchmarks_by_ru,
    get_benchmark,
    suite_names,
)


class TestSuite:
    def test_ten_benchmarks(self):
        assert len(SUITE) == 10
        assert len(set(suite_names())) == 10

    def test_table2_ru_classes(self):
        expected = {
            "ASI": RU.LOW, "LIV": RU.MEDIUM, "ORK": RU.HIGH,
            "PAP": RU.MEDIUM, "DEL": RU.LOW, "KRO": RU.HIGH,
            "MYC": RU.HIGH, "PAC": RU.LOW, "ROA": RU.LOW,
            "SER": RU.MEDIUM,
        }
        for name, ru in expected.items():
            assert get_benchmark(name).ru is ru

    def test_lookup_case_insensitive(self):
        assert get_benchmark("kro").name == "KRO"

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("NOPE")

    def test_by_ru_partition(self):
        total = sum(len(benchmarks_by_ru(ru)) for ru in RU)
        assert total == len(SUITE)

    @pytest.mark.parametrize("name", suite_names())
    def test_tiny_scale_builds_valid_matrices(self, name):
        m = get_benchmark(name).build("tiny")
        m.validate()
        assert m.nnz > 0
        assert m.num_rows == m.num_cols  # all Table 2 graphs are square

    def test_scales_are_ordered(self):
        tiny = get_benchmark("KRO").build("tiny")
        small = get_benchmark("KRO").build("small")
        assert small.nnz > tiny.nnz

    def test_bad_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_benchmark("KRO").build("enormous")

    def test_myc_has_few_rows_high_density(self):
        myc = get_benchmark("MYC").build("tiny")
        others = get_benchmark("DEL").build("tiny")
        assert myc.density > others.density


class TestAnalysis:
    def test_reuse_stats_basic(self, small_graph):
        stats = reuse_stats(small_graph)
        assert stats.nnz == small_graph.nnz
        assert stats.avg_row_nnz == pytest.approx(
            small_graph.nnz / small_graph.num_rows
        )
        assert 0 <= stats.row_gini <= 1
        assert 0 <= stats.col_gini <= 1
        assert 0 <= stats.bandedness <= 1

    def test_banded_matrix_detected(self, banded_matrix):
        stats = reuse_stats(banded_matrix)
        assert stats.bandedness > 0.5

    def test_power_law_higher_gini_than_banded(
        self, small_graph, banded_matrix
    ):
        assert (
            reuse_stats(small_graph).col_gini
            > reuse_stats(banded_matrix).col_gini
        )

    def test_estimate_ru_low_for_banded(self, banded_matrix):
        assert estimate_ru(banded_matrix) is RU.LOW

    def test_estimate_ru_high_for_dense_hubs(self):
        myc = get_benchmark("MYC").build("tiny")
        assert estimate_ru(myc) in (RU.MEDIUM, RU.HIGH)

    def test_estimate_ru_matches_suite_direction(self):
        """The heuristic should rank high-RU suite members above
        low-RU ones on average (not necessarily each exactly)."""
        order = {RU.LOW: 0, RU.MEDIUM: 1, RU.HIGH: 2}
        lows = [
            order[estimate_ru(b.build("tiny"))]
            for b in benchmarks_by_ru(RU.LOW)
        ]
        highs = [
            order[estimate_ru(b.build("tiny"))]
            for b in benchmarks_by_ru(RU.HIGH)
        ]
        assert np.mean(highs) > np.mean(lows)

    def test_working_set_bytes(self, tiny_matrix):
        ws = working_set_bytes(tiny_matrix, dense_row_size=16)
        assert ws["sparse_stream"] == tiny_matrix.nnz * 12
        assert ws["rmatrix"] == 4 * 64
        assert ws["cmatrix"] == 4 * 64
        assert ws["touched_rmatrix"] <= ws["rmatrix"]
