"""Unit tests for the tile ISA, bypass policy, and CPE scheduler."""

import pytest

from repro.core.bypass import BypassPolicy
from repro.core.cpe import ControlProcessor, ScheduleParams
from repro.core.instructions import (
    InitializationInstruction,
    Primitive,
    SchedulingBarrierInstruction,
    TerminationInstruction,
    TileInstruction,
    WBInvalidateInstruction,
)
from repro.sparse.tiled import tile_matrix


def make_init(primitive=Primitive.SPMM, **overrides):
    kwargs = dict(
        primitive=primitive,
        rmatrix_base=0x1000,
        cmatrix_base=0x2000,
        sparse_r_ids_base=0x3000,
        sparse_c_ids_base=0x4000,
        sparse_vals_base=0x5000,
        sparse_out_vals_base=(
            0x6000 if primitive is Primitive.SDDMM else 0
        ),
        rmatrix_bypass=False,
        cmatrix_bypass=False,
        sizeof_indices=4,
        sizeof_vals=4,
        dense_row_size=32,
    )
    kwargs.update(overrides)
    return InitializationInstruction(**kwargs)


class TestInstructions:
    def test_init_valid(self):
        init = make_init()
        assert init.primitive is Primitive.SPMM

    def test_init_rejects_bad_k(self):
        with pytest.raises(ValueError, match="K"):
            make_init(dense_row_size=0)

    def test_init_rejects_bad_index_size(self):
        with pytest.raises(ValueError, match="sizeof_indices"):
            make_init(sizeof_indices=3)

    def test_sddmm_requires_output_base(self):
        with pytest.raises(ValueError, match="output base"):
            make_init(primitive=Primitive.SDDMM, sparse_out_vals_base=0)

    def test_tile_instruction_requires_work(self):
        with pytest.raises(ValueError, match="nonzero"):
            TileInstruction(0, 0, 0)

    def test_tile_instruction_rejects_negative_offsets(self):
        with pytest.raises(ValueError):
            TileInstruction(-1, 0, 5)


class TestBypassPolicy:
    def test_defaults_match_section_5_2(self):
        p = BypassPolicy()
        assert p.sparse_stream_bypass
        assert p.sddmm_output_bypass
        assert not p.rmatrix_bypass
        assert not p.cmatrix_bypass

    def test_legacy_no_bypass(self):
        p = BypassPolicy.legacy_no_bypass()
        assert not p.sparse_stream_bypass
        assert not p.sddmm_output_bypass

    def test_rmatrix_bypassed(self):
        assert BypassPolicy.rmatrix_bypassed().rmatrix_bypass


class TestScheduling:
    def test_row_panel_constraint_holds(self, small_graph):
        tiled = tile_matrix(small_graph, 8, 16)
        cpe = ControlProcessor(num_pes=3)
        schedule = cpe.build_schedule(tiled)
        schedule.validate_row_panel_constraint()  # must not raise

    def test_round_robin_assignment(self, small_graph):
        tiled = tile_matrix(small_graph, 8, None)
        cpe = ControlProcessor(num_pes=4)
        schedule = cpe.build_schedule(tiled)
        for tiles in schedule.epochs[0]:
            panels = {t.row_panel_id for t in tiles}
            owners = {rp % 4 for rp in panels}
            assert len(owners) <= 1

    def test_no_barriers_single_epoch(self, small_graph):
        tiled = tile_matrix(small_graph, 8, 16)
        schedule = ControlProcessor(2).build_schedule(tiled)
        assert schedule.num_epochs == 1

    def test_barriers_epoch_per_col_group(self, small_graph):
        tiled = tile_matrix(small_graph, 8, 16)
        schedule = ControlProcessor(2).build_schedule(
            tiled, ScheduleParams(use_barriers=True, barrier_group_cols=2)
        )
        assert schedule.num_epochs >= 2
        for epoch_idx, epoch in enumerate(schedule.epochs):
            groups = {
                t.col_panel_id // 2 for tiles in epoch for t in tiles
            }
            assert len(groups) <= 1

    def test_all_tiles_scheduled_exactly_once(self, small_graph):
        tiled = tile_matrix(small_graph, 8, 16)
        for barriers in (False, True):
            schedule = ControlProcessor(3).build_schedule(
                tiled, ScheduleParams(use_barriers=barriers)
            )
            ids = [
                t.tile_id
                for epoch in schedule.epochs
                for tiles in epoch
                for t in tiles
            ]
            assert sorted(ids) == [t.tile_id for t in tiled.tiles]

    def test_load_imbalance_metric(self, small_graph):
        tiled = tile_matrix(small_graph, 8, None)
        schedule = ControlProcessor(2).build_schedule(tiled)
        assert schedule.load_imbalance() >= 1.0
        assert sum(schedule.pe_nnz()) == small_graph.nnz

    def test_tile_order_preserved_within_pe(self, small_graph):
        """Without barriers a PE walks its tiles row-panel-major
        (Figure 5a)."""
        tiled = tile_matrix(small_graph, 8, 16)
        schedule = ControlProcessor(2).build_schedule(tiled)
        for pe in range(2):
            tiles = schedule.tiles_for_pe(pe)
            keys = [(t.row_panel_id, t.col_panel_id) for t in tiles]
            assert keys == sorted(keys)


class TestInstructionStreams:
    def test_stream_structure(self, small_graph):
        tiled = tile_matrix(small_graph, 8, 16)
        cpe = ControlProcessor(2)
        schedule = cpe.build_schedule(
            tiled, ScheduleParams(use_barriers=True)
        )
        init = make_init()
        streams = cpe.instruction_streams(schedule, init)
        assert len(streams) == 2
        for stream in streams:
            assert isinstance(stream[0], InitializationInstruction)
            assert isinstance(stream[-1], TerminationInstruction)
            assert isinstance(stream[-2], WBInvalidateInstruction)
            tile_count = sum(
                1 for i in stream if isinstance(i, TileInstruction)
            )
            assert tile_count == len(schedule.tiles_for_pe(
                streams.index(stream))
            )

    def test_barriers_between_epochs_not_after_last(self, small_graph):
        tiled = tile_matrix(small_graph, 8, 16)
        cpe = ControlProcessor(2)
        schedule = cpe.build_schedule(
            tiled, ScheduleParams(use_barriers=True)
        )
        streams = cpe.instruction_streams(schedule, make_init())
        for stream in streams:
            barriers = [
                i for i in stream
                if isinstance(i, SchedulingBarrierInstruction)
            ]
            assert len(barriers) == schedule.num_epochs - 1

    def test_tile_instructions_carry_layout_offsets(self, small_graph):
        tiled = tile_matrix(small_graph, 8, None)
        cpe = ControlProcessor(1)
        schedule = cpe.build_schedule(tiled)
        streams = cpe.instruction_streams(schedule, make_init())
        tile_instrs = [
            i for i in streams[0] if isinstance(i, TileInstruction)
        ]
        assert [t.sparse_in_start_offset for t in tile_instrs] == [
            t.sparse_in_start_offset for t in tiled.tiles
        ]
