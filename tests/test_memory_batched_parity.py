"""Differential parity: batched replay vs the scalar oracle.

The batched trace-replay fast path (``Cache.access_many``,
``BypassBuffer.stream_access_many``, ``STLB.translate_many``,
``MemorySystem.replay_trace``) must be *bit-identical* to issuing the
same trace through the scalar methods one access at a time: same
counters, same per-access outcomes, same LRU order, same dirty bits.
These tests replay randomized traces — mixed read/write, power-of-two
strides, hot-set skew, consecutive-run heavy, multi-level pressure —
through both implementations and require exact equality.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import CacheConfig, scaled_config
from repro.memory.bbf import BypassBuffer
from repro.memory.cache import NO_LINE, Cache
from repro.memory.hierarchy import (
    OP_DENSE,
    OP_DENSE_BYPASS,
    OP_STREAM,
    TRACE_REGIONS,
    MemorySystem,
    encode_op,
)
from repro.memory.tlb import STLB

# ---------------------------------------------------------------------------
# Trace generators (all deterministic via seeds).
# ---------------------------------------------------------------------------


def mixed_random(rng, n, num_lines, p_write=0.3):
    lines = rng.integers(0, num_lines, size=n)
    writes = rng.random(n) < p_write
    return lines, writes


def strided(rng, n, num_lines, stride):
    """Power-of-two strides: pathological set-conflict patterns."""
    lines = (np.arange(n) * stride + rng.integers(0, stride, size=n)) % num_lines
    writes = rng.random(n) < 0.2
    return lines, writes


def hot_set(rng, n, num_lines, hot=16):
    """90% of accesses to a small hot set, 10% uniform cold."""
    hot_lines = rng.choice(num_lines, size=hot, replace=False)
    pick_hot = rng.random(n) < 0.9
    lines = np.where(
        pick_hot,
        hot_lines[rng.integers(0, hot, size=n)],
        rng.integers(0, num_lines, size=n),
    )
    writes = rng.random(n) < 0.4
    return lines, writes


def run_heavy(rng, n, num_lines):
    """Consecutive same-line runs (exercises the RLE dedup)."""
    starts = rng.integers(0, num_lines, size=n // 4 + 1)
    reps = rng.integers(1, 8, size=n // 4 + 1)
    lines = np.repeat(starts, reps)[:n]
    writes = rng.random(lines.shape[0]) < 0.3
    return lines, writes


TRACES = {
    "mixed_random": lambda rng, n: mixed_random(rng, n, 4096),
    "small_footprint": lambda rng, n: mixed_random(rng, n, 64, p_write=0.5),
    "stride_pow2": lambda rng, n: strided(rng, n, 1 << 14, stride=64),
    "stride_pow2_big": lambda rng, n: strided(rng, n, 1 << 16, stride=1024),
    "hot_set_skew": lambda rng, n: hot_set(rng, n, 8192),
    "run_heavy": lambda rng, n: run_heavy(rng, n, 2048),
    "all_reads": lambda rng, n: (rng.integers(0, 4096, size=n), np.zeros(n, bool)),
    "all_writes": lambda rng, n: (rng.integers(0, 2048, size=n), np.ones(n, bool)),
}

GEOMETRIES = [
    CacheConfig(size_bytes=4 * 1024, associativity=8),    # 8 sets
    CacheConfig(size_bytes=2 * 1024, associativity=1),    # direct-mapped
    CacheConfig(size_bytes=16 * 1024, associativity=16),  # 16 ways
]


def cache_state(cache: Cache):
    """Insertion order in the per-set dicts IS the LRU order."""
    return [list(s.items()) for s in cache._sets]


def scalar_cache_replay(cache: Cache, lines, writes):
    hits, evicted = [], []
    for line, w in zip(lines.tolist(), writes.tolist()):
        h, e = cache.access(line, w)
        hits.append(h)
        evicted.append(NO_LINE if e is None else e)
    return np.array(hits), np.array(evicted, dtype=np.int64)


def counters(obj, names):
    return {name: getattr(obj, name) for name in names}


CACHE_COUNTERS = ("hits", "misses", "writebacks", "fills", "flush_writebacks")


# ---------------------------------------------------------------------------
# Cache.access_many parity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("trace_name", sorted(TRACES))
@pytest.mark.parametrize("geom", GEOMETRIES, ids=lambda g: f"{g.size_bytes}B-{g.associativity}w")
def test_cache_access_many_matches_scalar(trace_name, geom):
    rng = np.random.default_rng(hash(trace_name) % 2**32)
    lines, writes = TRACES[trace_name](rng, 4000)

    scalar = Cache(geom, name="scalar")
    batched = Cache(geom, name="batched")
    s_hits, s_ev = scalar_cache_replay(scalar, lines, writes)

    # Replay in several sub-batches: state must carry across calls.
    b_hits, b_ev = [], []
    for lo in range(0, lines.shape[0], 1111):
        h, e = batched.access_many(lines[lo:lo + 1111], writes[lo:lo + 1111])
        b_hits.append(h)
        b_ev.append(e)
    b_hits = np.concatenate(b_hits)
    b_ev = np.concatenate(b_ev)

    assert np.array_equal(s_hits, b_hits)
    assert np.array_equal(s_ev, b_ev)
    assert counters(scalar, CACHE_COUNTERS) == counters(batched, CACHE_COUNTERS)
    assert scalar.occupancy() == batched.occupancy()
    assert scalar.dirty_lines() == batched.dirty_lines()
    assert cache_state(scalar) == cache_state(batched)


def test_cache_access_many_scalar_write_flag():
    """``writes`` may be a scalar bool applied to the whole batch."""
    rng = np.random.default_rng(0)
    lines = rng.integers(0, 512, size=2000)
    for flag in (False, True):
        scalar = Cache(GEOMETRIES[0])
        batched = Cache(GEOMETRIES[0])
        w = np.full(lines.shape[0], flag)
        scalar_cache_replay(scalar, lines, w)
        batched.access_many(lines, flag)
        assert counters(scalar, CACHE_COUNTERS) == counters(batched, CACHE_COUNTERS)
        assert cache_state(scalar) == cache_state(batched)


def test_cache_access_many_empty():
    cache = Cache(GEOMETRIES[0])
    hits, ev = cache.access_many(np.empty(0, dtype=np.int64), False)
    assert hits.shape == (0,) and ev.shape == (0,)
    assert cache.accesses == 0


# ---------------------------------------------------------------------------
# BBF stream buffer parity (FIFO fast path + general fallback)
# ---------------------------------------------------------------------------

BBF_COUNTERS = ("stream_hits", "stream_misses", "writebacks", "flush_writebacks")


def make_bbf(entries=8):
    return BypassBuffer(entries, CacheConfig(size_bytes=1024, associativity=2))


def scalar_stream_replay(bbf, lines, writes):
    return np.array([
        bbf.stream_access(line, w)
        for line, w in zip(lines.tolist(), writes.tolist())
    ])


@pytest.mark.parametrize(
    "name,build",
    [
        # Strictly increasing, disjoint from residency: FIFO fast path.
        ("increasing", lambda rng: (np.arange(100, 400), np.zeros(300, bool))),
        ("increasing_writes", lambda rng: (np.arange(50), np.ones(50, bool))),
        # Fewer new lines than capacity: fast path without overflow.
        ("increasing_small", lambda rng: (np.arange(5), rng.random(5) < 0.5)),
        # Repeats and revisits: general fallback path.
        ("with_runs", lambda rng: (np.repeat(np.arange(40), 3), rng.random(120) < 0.3)),
        ("revisit", lambda rng: (np.concatenate([np.arange(20), np.arange(20)]),
                                 np.zeros(40, bool))),
        ("random", lambda rng: (rng.integers(0, 32, size=500), rng.random(500) < 0.4)),
    ],
)
def test_bbf_stream_many_matches_scalar(name, build):
    rng = np.random.default_rng(7)
    lines, writes = build(rng)
    scalar, batched = make_bbf(), make_bbf()
    s_hits = scalar_stream_replay(scalar, lines, writes)
    b_hits = batched.stream_access_many(lines, writes)
    assert np.array_equal(s_hits, b_hits)
    assert counters(scalar, BBF_COUNTERS) == counters(batched, BBF_COUNTERS)
    assert list(scalar._buffer.items()) == list(batched._buffer.items())


def test_bbf_fast_path_after_warmup():
    """The FIFO fast path must also be exact when the buffer already
    holds (dirty) lines that the new batch partially evicts."""
    scalar, batched = make_bbf(), make_bbf()
    warm_lines = np.arange(1000, 1008)
    warm_writes = np.array([True, False] * 4)
    scalar_stream_replay(scalar, warm_lines, warm_writes)
    batched.stream_access_many(warm_lines, warm_writes)
    # Disjoint increasing batch larger than capacity: evicts the whole
    # warm set plus the head of the batch itself.
    lines = np.arange(20)
    writes = np.array([True] * 3 + [False] * 17)
    s_hits = scalar_stream_replay(scalar, lines, writes)
    b_hits = batched.stream_access_many(lines, writes)
    assert np.array_equal(s_hits, b_hits)
    assert counters(scalar, BBF_COUNTERS) == counters(batched, BBF_COUNTERS)
    assert list(scalar._buffer.items()) == list(batched._buffer.items())


# ---------------------------------------------------------------------------
# STLB parity (no-eviction fast path + evicting fallback)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,entries,num_pages",
    [
        ("fits", 64, 32),          # no-eviction fast path
        ("thrash", 8, 64),         # evicting fallback
        ("boundary", 16, 16),      # exactly fills the TLB
    ],
)
def test_stlb_translate_many_matches_scalar(name, entries, num_pages):
    rng = np.random.default_rng(42)
    # Page = line*64 // 4096: 64 lines per page.
    lines = rng.integers(0, num_pages * 64, size=3000)
    scalar, batched = STLB(entries), STLB(entries)
    for line in lines.tolist():
        scalar.translate_line(line)
    for lo in range(0, lines.shape[0], 700):
        batched.translate_many(lines[lo:lo + 700])
    assert (scalar.hits, scalar.misses) == (batched.hits, batched.misses)
    assert list(scalar._tlb.items()) == list(batched._tlb.items())


def test_stlb_fast_path_reorders_resident_pages():
    """Fast path: resident pages touched by the batch move to MRU in
    last-occurrence order, exactly as scalar replay would."""
    scalar, batched = STLB(16), STLB(16)
    warm = np.arange(6) * 64          # pages 0..5
    trace = np.array([2, 2, 0, 4, 0, 9, 1]) * 64
    for s in (scalar, batched):
        for line in warm.tolist():
            s.translate_line(line)
    for line in trace.tolist():
        scalar.translate_line(line)
    batched.translate_many(trace)
    assert (scalar.hits, scalar.misses) == (batched.hits, batched.misses)
    assert list(scalar._tlb.items()) == list(batched._tlb.items())


# ---------------------------------------------------------------------------
# Full MemorySystem parity: interleaved multi-path, multi-PE traces
# ---------------------------------------------------------------------------


def system_state(ms: MemorySystem):
    return (
        [cache_state(c) for c in ms.l1s],
        [cache_state(c) for c in ms.l2s],
        cache_state(ms.llc),
        [list(b._buffer.items()) for b in ms.bbfs],
        [cache_state(b.victim) for b in ms.bbfs],
        [list(t._tlb.items()) for t in ms.stlbs],
    )


def random_op_trace(rng, n, num_lines):
    """Interleaved dense / bypass / stream ops with mixed writes."""
    lines = rng.integers(0, num_lines, size=n)
    paths = rng.choice([OP_DENSE, OP_DENSE_BYPASS, OP_STREAM], size=n,
                       p=[0.6, 0.2, 0.2])
    writes = rng.random(n) < 0.25
    regions = rng.integers(0, len(TRACE_REGIONS), size=n)
    ops = np.array([
        encode_op(int(p), bool(w), int(r))
        for p, w, r in zip(paths, writes, regions)
    ], dtype=np.int64)
    return lines, ops


def scalar_system_replay(ms: MemorySystem, pe_id, lines, ops):
    from repro.memory.hierarchy import OP_PATH_MASK, OP_REGION_SHIFT, OP_WRITE

    levels = []
    for line, op in zip(lines.tolist(), ops.tolist()):
        w = bool(op & OP_WRITE)
        path = op & OP_PATH_MASK
        region = TRACE_REGIONS[op >> OP_REGION_SHIFT]
        if path == OP_STREAM:
            lvl = ms.stream_access(pe_id, line, w, region=region)
        else:
            lvl = ms.dense_access(
                pe_id, line, w,
                bypass=(path == OP_DENSE_BYPASS), region=region,
            )
        levels.append(int(lvl))
    return np.array(levels, dtype=np.uint8)


@pytest.mark.parametrize("footprint", [512, 1 << 13, 1 << 17],
                         ids=["l1_resident", "l2_resident", "dram_heavy"])
def test_memory_system_replay_parity(footprint):
    """Multi-level pressure: footprints sized to L1, L2, and beyond,
    replayed on several PEs (shared L2/LLC/STLB contention included)."""
    cfg = scaled_config(4, cache_shrink=8)
    ms_s = MemorySystem(cfg)
    ms_b = MemorySystem(cfg)
    rng = np.random.default_rng(footprint)
    for chunk_idx in range(6):
        pe_id = int(rng.integers(0, cfg.num_pes))
        lines, ops = random_op_trace(rng, 2500, footprint)
        lv_s = scalar_system_replay(ms_s, pe_id, lines, ops)
        lv_b = ms_b.replay_trace(pe_id, lines, ops)
        assert np.array_equal(lv_s, lv_b), f"levels diverged in chunk {chunk_idx}"

    assert dataclasses.asdict(ms_s.collect_stats()) == dataclasses.asdict(
        ms_b.collect_stats()
    )
    for c_s, c_b in zip(ms_s.l1s + ms_s.l2s + [ms_s.llc],
                        ms_b.l1s + ms_b.l2s + [ms_b.llc]):
        assert c_s.occupancy() == c_b.occupancy()
        assert c_s.dirty_lines() == c_b.dirty_lines()
    assert system_state(ms_s) == system_state(ms_b)


def test_memory_system_replay_then_flush_parity():
    """Flush after replay: identical dirty counts and flush accounting."""
    cfg = scaled_config(4, cache_shrink=8)
    ms_s = MemorySystem(cfg)
    ms_b = MemorySystem(cfg)
    rng = np.random.default_rng(99)
    lines, ops = random_op_trace(rng, 5000, 4096)
    scalar_system_replay(ms_s, 1, lines, ops)
    ms_b.replay_trace(1, lines, ops)
    assert ms_s.flush_all() == ms_b.flush_all()
    assert dataclasses.asdict(ms_s.collect_stats()) == dataclasses.asdict(
        ms_b.collect_stats()
    )
