"""Unit tests for the Appendix A tiled layout."""

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix
from repro.sparse.tiled import TileInfo, _pad_to_line, tile_matrix


class TestAppendixAExample:
    """The exact 4x4 / RP=CP=2 example of Figure 15."""

    def test_tile_count_and_order(self, tiny_matrix):
        tiled = tile_matrix(tiny_matrix, 2, 2)
        assert tiled.num_tiles == 4
        panels = [(t.row_panel_id, t.col_panel_id) for t in tiled.tiles]
        assert panels == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_tile_nnz_counts(self, tiny_matrix):
        tiled = tile_matrix(tiny_matrix, 2, 2)
        assert [t.nnz for t in tiled.tiles] == [1, 2, 2, 2]

    def test_offsets_contiguous(self, tiny_matrix):
        tiled = tile_matrix(tiny_matrix, 2, 2)
        offsets = [t.sparse_in_start_offset for t in tiled.tiles]
        assert offsets == [0, 1, 3, 5]

    def test_entry_reordering_matches_figure(self, tiny_matrix):
        # Figure 15(b): vals reordered so per-tile entries consolidate;
        # the first tile holds only (0,1)->1.0 (value "c" in the paper's
        # letters corresponds to our from_dense value at [0,1]).
        tiled = tile_matrix(tiny_matrix, 2, 2)
        r, c, v = tiled.tile_entries(tiled.tiles[0])
        assert list(r) == [0] and list(c) == [1]

    def test_roundtrip(self, tiny_matrix):
        tiled = tile_matrix(tiny_matrix, 2, 2)
        assert tiled.to_coo() == tiny_matrix


class TestLayoutInvariants:
    @pytest.mark.parametrize("rp,cp", [(2, 2), (16, 16), (64, None), (1, 1)])
    def test_validate_passes(self, small_graph, rp, cp):
        tiled = tile_matrix(small_graph, rp, cp)
        tiled.validate()

    def test_preserves_matrix(self, small_graph):
        tiled = tile_matrix(small_graph, 32, 32)
        assert tiled.to_coo() == small_graph

    def test_tiles_cover_all_entries(self, small_graph):
        tiled = tile_matrix(small_graph, 32, 32)
        assert sum(t.nnz for t in tiled.tiles) == small_graph.nnz

    def test_no_empty_tiles(self, small_graph):
        tiled = tile_matrix(small_graph, 8, 8)
        assert all(t.nnz > 0 for t in tiled.tiles)

    def test_row_major_within_tile(self, small_graph):
        tiled = tile_matrix(small_graph, 64, 64)
        for tile in tiled.tiles[:10]:
            r, c, _ = tiled.tile_entries(tile)
            keys = r * small_graph.num_cols + c
            assert np.all(np.diff(keys) > 0)

    def test_entries_within_panels(self, small_graph):
        tiled = tile_matrix(small_graph, 16, 48)
        for tile in tiled.tiles:
            r, c, _ = tiled.tile_entries(tile)
            assert np.all(r // 16 == tile.row_panel_id)
            assert np.all(c // 48 == tile.col_panel_id)


class TestOutputAlignment:
    """Section 4.3: SDDMM output tiles start at cache-line boundaries."""

    def test_out_offsets_line_aligned(self, small_graph):
        tiled = tile_matrix(small_graph, 16, 16)
        for tile in tiled.tiles:
            assert tile.sparse_out_start_offset % 16 == 0

    def test_out_length_covers_padded_tiles(self, small_graph):
        tiled = tile_matrix(small_graph, 16, 16)
        expected = sum(_pad_to_line(t.nnz) for t in tiled.tiles)
        assert tiled.out_vals_length == expected

    def test_pad_to_line(self):
        assert _pad_to_line(1) == 16
        assert _pad_to_line(16) == 16
        assert _pad_to_line(17) == 32


class TestPanelQueries:
    def test_tiles_in_row_panel(self, small_graph):
        tiled = tile_matrix(small_graph, 32, 32)
        for rp in range(min(tiled.num_row_panels, 3)):
            tiles = tiled.tiles_in_row_panel(rp)
            assert all(t.row_panel_id == rp for t in tiles)

    def test_tiles_in_col_panel(self, small_graph):
        tiled = tile_matrix(small_graph, 32, 32)
        tiles = tiled.tiles_in_col_panel(0)
        assert all(t.col_panel_id == 0 for t in tiles)

    def test_panel_counts(self, small_graph):
        tiled = tile_matrix(small_graph, 32, 48)
        assert tiled.num_row_panels == -(-small_graph.num_rows // 32)
        assert tiled.num_col_panels == -(-small_graph.num_cols // 48)

    def test_none_col_panel_means_all_columns(self, small_graph):
        tiled = tile_matrix(small_graph, 32, None)
        assert tiled.num_col_panels == 1
        assert all(t.col_panel_id == 0 for t in tiled.tiles)


class TestEdgeCases:
    def test_bad_row_panel(self, tiny_matrix):
        with pytest.raises(ValueError):
            tile_matrix(tiny_matrix, 0, 2)

    def test_panel_larger_than_matrix(self, tiny_matrix):
        tiled = tile_matrix(tiny_matrix, 1000, 1000)
        assert tiled.num_tiles == 1
        assert tiled.tiles[0].nnz == tiny_matrix.nnz

    def test_empty_matrix(self):
        empty = COOMatrix(4, 4, np.array([]), np.array([]), np.array([]))
        tiled = tile_matrix(empty, 2, 2)
        assert tiled.num_tiles == 0
        assert tiled.out_vals_length == 0
        tiled.validate()

    def test_validate_detects_corruption(self, tiny_matrix):
        tiled = tile_matrix(tiny_matrix, 2, 2)
        bad = TileInfo(
            tile_id=0, row_panel_id=0, col_panel_id=0,
            sparse_in_start_offset=1, sparse_out_start_offset=0, nnz=1,
        )
        tiled.tiles[0] = bad
        with pytest.raises(ValueError):
            tiled.validate()
