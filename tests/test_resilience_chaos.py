"""ChaosMonkey: deterministic, thread-order-independent fault injection."""

from __future__ import annotations

import pytest

from repro.resilience import (
    ChaosConfig,
    ChaosMonkey,
    InjectedCrash,
    InjectedFault,
)


def fired(monkey: ChaosMonkey, pe: int, chunk: int, backend="pipelined"):
    try:
        monkey.worker_fault(pe, chunk, backend=backend)
        return False
    except InjectedFault:
        return True


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        cfg = ChaosConfig(seed=7, worker_fault_rate=0.3)
        grid = [(pe, ch) for pe in range(4) for ch in range(16)]
        a = [fired(ChaosMonkey(cfg), pe, ch) for pe, ch in grid]
        b = [fired(ChaosMonkey(cfg), pe, ch) for pe, ch in grid]
        assert a == b
        assert any(a) and not all(a)  # rate is neither 0 nor 1

    def test_call_order_does_not_matter(self):
        """Decisions hash (seed, pe, chunk), so thread interleaving
        cannot change which chunks fault."""
        cfg = ChaosConfig(seed=3, worker_fault_rate=0.4)
        grid = [(pe, ch) for pe in range(3) for ch in range(10)]
        forward = ChaosMonkey(cfg)
        reverse = ChaosMonkey(cfg)
        got_fwd = {g: fired(forward, *g) for g in grid}
        got_rev = {g: fired(reverse, *g) for g in reversed(grid)}
        assert got_fwd == got_rev

    def test_different_seeds_differ(self):
        grid = [(pe, ch) for pe in range(4) for ch in range(32)]
        a = ChaosMonkey(ChaosConfig(seed=1, worker_fault_rate=0.5))
        b = ChaosMonkey(ChaosConfig(seed=2, worker_fault_rate=0.5))
        assert [fired(a, *g) for g in grid] != [fired(b, *g) for g in grid]


class TestWorkerFaults:
    def test_explicit_faults_always_fire(self):
        monkey = ChaosMonkey(ChaosConfig(worker_faults=((2, 5),)))
        assert not fired(monkey, 2, 4)
        assert fired(monkey, 2, 5)

    def test_budget_caps_total_faults(self):
        monkey = ChaosMonkey(
            ChaosConfig(worker_fault_rate=1.0, max_worker_faults=2)
        )
        results = [fired(monkey, 0, ch) for ch in range(5)]
        assert results == [True, True, False, False, False]
        assert monkey.worker_faults_injected == 2

    def test_backend_scoping(self):
        monkey = ChaosMonkey(
            ChaosConfig(
                worker_fault_rate=1.0, fault_backends=("pipelined",)
            )
        )
        assert not fired(monkey, 0, 0, backend="scalar")
        assert not fired(monkey, 0, 0, backend="vectorized")
        assert fired(monkey, 0, 0, backend="pipelined")

    def test_zero_rate_never_fires(self):
        monkey = ChaosMonkey(ChaosConfig(worker_fault_rate=0.0))
        assert not any(fired(monkey, pe, ch)
                       for pe in range(4) for ch in range(20))


class TestReplayDelays:
    def test_cadence(self):
        sleeps = []
        monkey = ChaosMonkey(
            ChaosConfig(replay_delay_s=0.01, replay_delay_every=3),
            sleep=sleeps.append,
        )
        for _ in range(9):
            monkey.replay_delay()
        assert sleeps == [0.01] * 3
        assert monkey.replay_delays_injected == 3

    def test_disabled_by_default(self):
        sleeps = []
        monkey = ChaosMonkey(ChaosConfig(), sleep=sleeps.append)
        for _ in range(10):
            monkey.replay_delay()
        assert sleeps == []


class TestCheckpointTruncation:
    def test_truncates_configured_epochs(self, tmp_path):
        path = tmp_path / "ckpt-epoch-000001.ckpt"
        path.write_bytes(b"x" * 1000)
        monkey = ChaosMonkey(ChaosConfig(truncate_checkpoints=(1,)))
        monkey.on_checkpoint_written(str(path), 0)
        assert path.stat().st_size == 1000  # epoch 0 untouched
        monkey.on_checkpoint_written(str(path), 1)
        assert path.stat().st_size == 500
        assert monkey.checkpoints_truncated == 1

    def test_engine_recovers_from_truncated_newest(self, tmp_path):
        """End to end: chaos truncates the newest snapshot; resume falls
        back to the previous one and still reproduces the golden run."""
        import dataclasses
        import numpy as np

        from repro.config import ResilienceConfig, scaled_config
        from repro.core.accelerator import KernelSettings, SpadeSystem

        a_cfg = scaled_config(4, cache_shrink=8)
        from repro.sparse.generators import rmat_graph

        a = rmat_graph(scale=8, seed=5)
        b = np.random.default_rng(0).random(
            (a.num_cols, 16), dtype=np.float32
        )
        settings = KernelSettings(
            row_panel_size=32, col_panel_size=64, use_barriers=True
        )
        golden = SpadeSystem(a_cfg).spmm(a, b, settings=settings)
        n_epochs = len(golden.result.epoch_timings)
        assert n_epochs >= 3
        kill_at = n_epochs - 2
        monkey = ChaosMonkey(
            ChaosConfig(
                kill_after_epoch=kill_at,
                truncate_checkpoints=(kill_at,),
            )
        )
        cfg = dataclasses.replace(
            a_cfg,
            resilience=ResilienceConfig(checkpoint_dir=str(tmp_path)),
        )
        with pytest.raises(InjectedCrash):
            SpadeSystem(cfg, chaos=monkey).spmm(a, b, settings=settings)
        resumed = dataclasses.replace(
            a_cfg,
            resilience=ResilienceConfig(
                checkpoint_dir=str(tmp_path), resume=True
            ),
        )
        report = SpadeSystem(resumed).spmm(a, b, settings=settings)
        np.testing.assert_array_equal(report.output, golden.output)
        assert report.time_ns == golden.time_ns


class TestKillSwitch:
    def test_fires_once_at_the_right_epoch(self):
        monkey = ChaosMonkey(ChaosConfig(kill_after_epoch=2))
        monkey.after_epoch(0)
        monkey.after_epoch(1)
        with pytest.raises(InjectedCrash):
            monkey.after_epoch(2)
        monkey.after_epoch(2)  # one-shot: second pass is a no-op
        assert monkey.crashes_injected == 1

    def test_disabled_by_default(self):
        monkey = ChaosMonkey(ChaosConfig())
        for epoch in range(10):
            monkey.after_epoch(epoch)
        assert monkey.crashes_injected == 0


class TestConfigValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ChaosConfig(worker_fault_rate=1.5)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            ChaosConfig(replay_delay_s=-1.0)

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            ChaosConfig(max_worker_faults=-1)
