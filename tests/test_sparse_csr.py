"""Unit tests for the CSR format."""

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


@pytest.fixture()
def csr(tiny_matrix) -> CSRMatrix:
    return CSRMatrix.from_coo(tiny_matrix)


class TestConversion:
    def test_roundtrip_through_coo(self, tiny_matrix, csr):
        assert csr.to_coo() == tiny_matrix

    def test_dense_agrees(self, tiny_matrix, csr):
        np.testing.assert_allclose(csr.to_dense(), tiny_matrix.to_dense())

    def test_nnz_preserved(self, small_graph):
        assert CSRMatrix.from_coo(small_graph).nnz == small_graph.nnz

    def test_rectangular(self, random_rect):
        csr = CSRMatrix.from_coo(random_rect)
        assert csr.shape == random_rect.shape
        assert csr.to_coo() == random_rect


class TestValidation:
    def test_row_ptr_length(self):
        with pytest.raises(ValueError, match="row_ptr"):
            CSRMatrix(
                2, 2, np.array([0, 1]), np.array([0]), np.array([1.0])
            )

    def test_row_ptr_endpoint(self):
        with pytest.raises(ValueError, match="endpoints"):
            CSRMatrix(
                2, 2, np.array([0, 1, 5]), np.array([0]), np.array([1.0])
            )

    def test_row_ptr_monotonic(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix(
                2, 2, np.array([0, 3, 2]),
                np.array([0, 1]), np.array([1.0, 2.0]),
            )

    def test_col_out_of_range(self):
        with pytest.raises(ValueError, match="column index"):
            CSRMatrix(
                1, 2, np.array([0, 1]), np.array([5]), np.array([1.0])
            )


class TestAccess:
    def test_row_slice_contents(self, csr, tiny_matrix):
        dense = tiny_matrix.to_dense()
        for row in range(csr.num_rows):
            cols, vals = csr.row_slice(row)
            np.testing.assert_allclose(dense[row, cols], vals)
            assert len(cols) == int((dense[row] != 0).sum())

    def test_row_slice_sorted_columns(self, small_graph):
        csr = CSRMatrix.from_coo(small_graph)
        for row in range(0, csr.num_rows, 17):
            cols, _ = csr.row_slice(row)
            assert np.all(np.diff(cols) > 0)

    def test_footprint_bytes(self, csr):
        expected = (csr.num_rows + 1) * 4 + csr.nnz * 8
        assert csr.footprint_bytes() == expected

    def test_empty_rows_handled(self):
        m = COOMatrix(5, 5, np.array([4]), np.array([0]), np.array([2.0]))
        csr = CSRMatrix.from_coo(m)
        for row in range(4):
            cols, vals = csr.row_slice(row)
            assert len(cols) == 0
        cols, vals = csr.row_slice(4)
        assert list(cols) == [0]
