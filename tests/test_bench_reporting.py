"""Unit tests for the results-report assembler."""

from pathlib import Path

import pytest

from repro.bench.reporting import (
    assemble_report,
    available_results,
    check_against_paper,
    extract_headlines,
    write_report,
)


@pytest.fixture()
def results_dir(tmp_path) -> Path:
    (tmp_path / "fig09.txt").write_text(
        "Figure 9: speedup over CPU\n"
        "geomean vs CPU: Base 1.82x (paper 1.67), Opt 2.33x "
        "(paper 2.32), SPADE2 4.54x (paper 3.52)\n"
    )
    (tmp_path / "sec7g.txt").write_text(
        "area :  24.99 mm^2 (paper 24.64; error 1.4%)\n"
        "power:  19.95 W    (paper 20.3; error 1.7%)\n"
    )
    (tmp_path / "zzz_custom.txt").write_text("custom experiment\n")
    return tmp_path


class TestAssembly:
    def test_canonical_ordering(self, results_dir):
        names = available_results(results_dir)
        assert names.index("fig09") < names.index("sec7g")
        assert names[-1] == "zzz_custom"  # unknown names go last

    def test_report_contains_all_sections(self, results_dir):
        report = assemble_report(results_dir)
        assert "## fig09" in report
        assert "## sec7g" in report
        assert "## zzz_custom" in report

    def test_empty_dir(self, tmp_path):
        assert "no persisted results" in assemble_report(tmp_path)

    def test_write_report(self, results_dir):
        path = write_report(results_dir)
        assert path.exists()
        assert path.read_text().startswith("# SPADE reproduction")


class TestHeadlines:
    def test_extraction(self, results_dir):
        headlines = extract_headlines(results_dir)
        assert headlines["fig09_base_vs_cpu"] == pytest.approx(1.82)
        assert headlines["fig09_opt_vs_cpu"] == pytest.approx(2.33)
        assert headlines["sec7g_area_mm2"] == pytest.approx(24.99)
        assert headlines["sec7g_power_w"] == pytest.approx(19.95)

    def test_check_within_tolerance(self, results_dir):
        headlines = extract_headlines(results_dir)
        assert check_against_paper(headlines, tolerance=0.5) == []

    def test_check_flags_outliers(self):
        notes = check_against_paper(
            {"fig09_base_vs_cpu": 10.0}, tolerance=0.5
        )
        assert len(notes) == 1
        assert "fig09_base_vs_cpu" in notes[0]

    def test_missing_headlines_ignored(self):
        assert check_against_paper({}) == []


class TestRealResults:
    """If the repo's own results directory is populated (after a bench
    run), the measured headlines must be within 2x of the paper."""

    def test_repo_results_sane(self):
        results = Path(__file__).parent.parent / "benchmarks" / "results"
        if not results.exists() or not any(results.glob("*.txt")):
            pytest.skip("no persisted bench results yet")
        headlines = extract_headlines(results)
        assert headlines, "results present but no headlines extracted"
        assert check_against_paper(headlines, tolerance=1.0) == []
