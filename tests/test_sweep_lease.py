"""Unit tests for the sweep lease protocol (claim / heartbeat /
reclaim / quarantine)."""

import json
import os
import time

import pytest

from repro.resilience import ChaosConfig, ChaosMonkey
from repro.sweep.lease import (
    LEASE_FORMAT,
    QUARANTINE_FORMAT,
    LeaseManager,
    default_owner,
    heartbeat_path,
    open_leases,
)

KEY = "ab" + "0" * 62


def _backdate(path, seconds):
    old = time.time() - seconds
    os.utime(path, (old, old))


class TestClaim:
    def test_claim_release_cycle(self, tmp_path):
        mgr = LeaseManager(str(tmp_path), ttl_s=30.0)
        assert mgr.try_claim(KEY) == 1
        state = mgr.read(KEY)
        assert state.owner == mgr.owner
        assert state.attempt == 1
        assert state.pid == os.getpid()
        assert mgr.release(KEY)
        assert mgr.read(KEY) is None

    def test_foreign_live_lease_is_respected(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", ttl_s=30.0)
        b = LeaseManager(str(tmp_path), owner="b", ttl_s=30.0)
        assert a.try_claim(KEY) == 1
        assert b.try_claim(KEY) is None

    def test_reclaim_is_idempotent_for_owner(self, tmp_path):
        mgr = LeaseManager(str(tmp_path), ttl_s=30.0)
        assert mgr.try_claim(KEY) == 1
        assert mgr.try_claim(KEY) == 1  # no attempt burn on re-claim

    def test_release_never_touches_foreign_lease(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", ttl_s=30.0)
        b = LeaseManager(str(tmp_path), owner="b", ttl_s=30.0)
        assert a.try_claim(KEY) == 1
        assert not b.release(KEY)
        assert a.read(KEY) is not None

    def test_lease_file_is_valid_json_with_format_tag(self, tmp_path):
        mgr = LeaseManager(str(tmp_path), ttl_s=30.0)
        mgr.try_claim(KEY)
        data = json.loads(open(mgr.path_for(KEY)).read())
        assert data["format"] == LEASE_FORMAT
        assert data["key"] == KEY

    def test_distinct_default_owners(self):
        assert default_owner() != default_owner()


class TestReclaim:
    def test_stale_lease_reclaimed_with_attempt_bump(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="dead", ttl_s=5.0)
        assert a.try_claim(KEY) == 1
        _backdate(a.path_for(KEY), 3600)
        b = LeaseManager(str(tmp_path), owner="alive", ttl_s=5.0)
        assert b.try_claim(KEY) == 2  # attempt count survives owner death
        assert b.reclaims == 1
        state = b.read(KEY)
        assert state.owner == "alive"

    def test_heartbeat_defeats_reclamation(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="slow", ttl_s=5.0)
        assert a.try_claim(KEY) == 1
        _backdate(a.path_for(KEY), 3600)
        assert a.heartbeat(KEY)  # the owner wakes up just in time
        b = LeaseManager(str(tmp_path), owner="vulture", ttl_s=5.0)
        assert b.try_claim(KEY) is None

    def test_corrupt_lease_reads_invalid_and_is_reclaimable(self, tmp_path):
        mgr = LeaseManager(str(tmp_path), ttl_s=5.0)
        path = mgr.path_for(KEY)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write("not json{{{")
        state = mgr.read(KEY)
        assert state is not None and not state.valid
        # Corrupt leases are treated as stale regardless of age.
        assert mgr.try_claim(KEY) == 1

    def test_heartbeat_path_of_missing_file_is_false(self, tmp_path):
        assert not heartbeat_path(str(tmp_path / "gone.lease"))

    def test_bump_increments_owned_lease(self, tmp_path):
        mgr = LeaseManager(str(tmp_path), ttl_s=30.0)
        assert mgr.try_claim(KEY) == 1
        assert mgr.bump(KEY) == 2
        assert mgr.bump(KEY) == 3
        assert mgr.read(KEY).attempt == 3

    def test_bump_refuses_foreign_lease(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", ttl_s=30.0)
        b = LeaseManager(str(tmp_path), owner="b", ttl_s=30.0)
        a.try_claim(KEY)
        assert b.bump(KEY) is None


class TestQuarantine:
    def test_manifest_roundtrip(self, tmp_path):
        mgr = LeaseManager(str(tmp_path), ttl_s=30.0)
        mgr.try_claim(KEY)
        path = mgr.quarantine(KEY, {
            "driver": "fig14", "index": 3, "point": "('KRO',)",
            "attempts": 3, "error": "worker died (exitcode=-9)",
        })
        assert os.path.exists(path)
        manifest = mgr.is_quarantined(KEY)
        assert manifest["format"] == QUARANTINE_FORMAT
        assert manifest["attempts"] == 3
        assert "worker died" in manifest["error"]
        # Quarantining drops the lease: the key is skipped via the
        # manifest, not blocked by a dangling claim.
        assert mgr.read(KEY) is None

    def test_quarantine_listing_and_clear(self, tmp_path):
        mgr = LeaseManager(str(tmp_path), ttl_s=30.0)
        mgr.quarantine(KEY, {"error": "boom", "attempts": 2})
        assert [m["key"] for m in mgr.quarantined()] == [KEY]
        assert mgr.clear_quarantine(KEY)
        assert mgr.is_quarantined(KEY) is None
        assert mgr.quarantined() == []

    def test_unquarantined_key_reads_none(self, tmp_path):
        mgr = LeaseManager(str(tmp_path), ttl_s=30.0)
        assert mgr.is_quarantined(KEY) is None


class TestOpenLeases:
    def test_none_propagation(self):
        assert open_leases(None) is None

    def test_builds_manager(self, tmp_path):
        mgr = open_leases(str(tmp_path / "leases"), ttl_s=7.0)
        assert isinstance(mgr, LeaseManager)
        assert mgr.ttl_s == 7.0

    def test_rejects_bad_ttl(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseManager(str(tmp_path), ttl_s=0.0)


class TestHeartbeatStallChaos:
    def test_stalled_heartbeat_lets_a_peer_reclaim(self, tmp_path):
        # The chaos fault for "live owner that looks dead": the owner
        # claims, its heartbeat is stalled, the lease ages past the TTL
        # and a peer reclaims it — exactly the double-execution hazard
        # the exactly-once ledger audit exists to surface.
        monkey = ChaosMonkey(ChaosConfig(lease_heartbeat_stall=True))
        assert monkey.stall_lease_heartbeat()
        owner = LeaseManager(str(tmp_path), owner="stalled", ttl_s=2.0)
        assert owner.try_claim(KEY) == 1
        if not monkey.stall_lease_heartbeat():
            owner.heartbeat(KEY)  # (what a healthy worker would do)
        _backdate(owner.path_for(KEY), 10.0)
        peer = LeaseManager(str(tmp_path), owner="peer", ttl_s=2.0)
        assert peer.try_claim(KEY) == 2
        assert peer.read(KEY).owner == "peer"

    def test_no_stall_by_default(self):
        monkey = ChaosMonkey(ChaosConfig())
        assert not monkey.stall_lease_heartbeat()
