"""Unit tests for the cycle-level PE micro-simulator.

These validate the pipeline mechanisms that the analytic timing model
abstracts: latency tolerance through queue sizing, VRF tag filtering,
and RAW-ordered out-of-order execution.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import PEConfig
from repro.core.microsim import PEMicroSimulator, SIMD_PIPELINE_DEPTH


@pytest.fixture(scope="module")
def tile():
    rng = np.random.default_rng(7)
    n = 300
    return (
        rng.integers(0, 48, n),
        rng.integers(0, 48, n),
        rng.random(n).astype(np.float32),
    )


def run(tile, config=None, latency=100):
    sim = PEMicroSimulator(
        config or PEConfig(), memory_latency_cycles=latency
    )
    return sim.run_tile(*tile)


class TestCompleteness:
    def test_all_vops_execute(self, tile):
        stats = run(tile)
        n = len(tile[0])
        assert stats.vops_executed == n * 2  # two lines per dense row
        assert stats.tops_generated == n

    def test_single_nonzero(self):
        stats = run(
            (np.array([0]), np.array([0]), np.array([1.0], np.float32))
        )
        assert stats.vops_executed == 2
        assert stats.cycles > SIMD_PIPELINE_DEPTH

    def test_rejects_mismatched_arrays(self):
        sim = PEMicroSimulator(PEConfig())
        with pytest.raises(ValueError, match="equal length"):
            sim.run_tile(np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            PEMicroSimulator(PEConfig(), memory_latency_cycles=0)


class TestLatencyTolerance:
    def test_cycles_grow_sublinearly_with_latency(self, tile):
        """Doubling memory latency must not double execution time: the
        queues overlap requests (Section 4.4)."""
        c100 = run(tile, latency=100).cycles
        c400 = run(tile, latency=400).cycles
        assert c400 > c100
        assert c400 < 4 * c100

    def test_more_rs_entries_faster(self, tile):
        """The CFG0->CFG1 effect at cycle level."""
        small = run(
            tile, replace(PEConfig(), vop_rs_entries=4), latency=200
        )
        big = run(
            tile, replace(PEConfig(), vop_rs_entries=32), latency=200
        )
        assert big.cycles < small.cycles

    def test_deeper_sparse_queue_helps_at_high_latency(self, tile):
        """The CFG2->CFG3 effect: 3 -> 6 sparse load queue entries."""
        shallow = run(
            tile,
            replace(PEConfig(), sparse_load_queue_entries=1),
            latency=400,
        )
        deep = run(
            tile,
            replace(PEConfig(), sparse_load_queue_entries=6),
            latency=400,
        )
        assert deep.cycles <= shallow.cycles
        assert shallow.sparse_queue_stalls > deep.sparse_queue_stalls

    def test_requests_per_cycle_drops_with_latency(self, tile):
        fast = run(tile, latency=20)
        slow = run(tile, latency=400)
        assert fast.requests_per_cycle > slow.requests_per_cycle


class TestVRFBehaviour:
    def test_repeated_rows_hit_tag_cam(self):
        """All nonzeros in one row: the rMatrix lines stay in VRs."""
        n = 100
        tile = (
            np.zeros(n, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            np.ones(n, dtype=np.float32),
        )
        stats = run(tile)
        # Each tOp re-touches the same two rMatrix lines.
        assert stats.vrf_tag_hits >= n
        # Dense requests far below the no-filtering bound of 4 per tOp.
        assert stats.dense_requests < 3 * n

    def test_scattered_accesses_miss(self):
        n = 100
        tile = (
            np.arange(n, dtype=np.int64) * 7 % 997,
            np.arange(n, dtype=np.int64) * 13 % 997,
            np.ones(n, dtype=np.float32),
        )
        stats = run(tile)
        assert stats.dense_requests > n  # little reuse to filter

    def test_stores_eventually_drain(self, tile):
        stats = run(tile)
        assert stats.stores >= 0
        assert stats.cycles > 0
