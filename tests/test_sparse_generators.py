"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.sparse import generators as gen


def _is_symmetric(m) -> bool:
    return m == m.transpose()


def _has_no_self_loops(m) -> bool:
    return not np.any(m.r_ids == m.c_ids)


class TestStructuralProperties:
    def test_road_graph_symmetric_no_loops(self):
        m = gen.road_graph(side=16, seed=1)
        assert _is_symmetric(m)
        assert _has_no_self_loops(m)

    def test_road_graph_is_banded(self):
        m = gen.road_graph(side=32, seed=1)
        band = np.abs(m.r_ids - m.c_ids)
        # Grid + local shortcuts: everything within ~2 grid rows.
        assert band.max() <= 2 * 32

    def test_delaunay_degree_bounded(self):
        m = gen.delaunay_like(num_nodes=1024, avg_degree=6, seed=2)
        assert _is_symmetric(m)
        mean_degree = m.nnz / m.num_rows
        assert 2 <= mean_degree <= 14

    def test_rmat_power_law_hubs(self):
        m = gen.rmat_graph(scale=10, edge_factor=8, seed=3)
        counts = np.sort(m.col_nnz_counts())[::-1]
        mean = counts[counts > 0].mean()
        # Heavy-tailed: the top hub is far above the mean degree.
        assert counts[0] > 8 * mean

    def test_rmat_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            gen.rmat_graph(scale=4, a=0.5, b=0.3, c=0.3)

    def test_social_network_hubs(self):
        m = gen.social_network(num_nodes=2048, avg_degree=12, seed=4)
        counts = np.sort(m.col_nnz_counts())[::-1]
        assert counts[0] > 5 * counts[counts > 0].mean()

    def test_citation_graph_community_blocks(self):
        m = gen.citation_graph(
            num_communities=8, community_size=32, inter_frac=0.0, seed=5
        )
        # With no inter-community edges, all entries stay in-block.
        assert np.all(m.r_ids // 32 == m.c_ids // 32)

    def test_packing_multibanded(self):
        m = gen.packing_like(nx=8, ny=8, nz=8, seed=6)
        assert _is_symmetric(m)
        assert m.num_rows == 512

    def test_fem_block_banded(self):
        m = gen.fem_like(num_blocks=16, block_size=8,
                         bandwidth_blocks=2, seed=7)
        block_dist = np.abs(m.r_ids // 8 - m.c_ids // 8)
        assert block_dist.max() <= 2

    def test_banded_respects_bandwidth(self):
        m = gen.banded(num_rows=100, bandwidth=3, seed=8)
        assert np.abs(m.r_ids - m.c_ids).max() <= 3


class TestMycielskian:
    def test_node_count_recurrence(self):
        # |V(M(G))| = 2|V(G)| + 1, starting from K2.
        for iters, nodes in [(0, 2), (1, 5), (2, 11), (3, 23)]:
            m = gen.mycielskian_graph(iterations=iters)
            assert m.num_rows == nodes

    def test_edge_count_recurrence(self):
        # |E(M(G))| = 3|E(G)| + |V(G)|.
        e, v = 1, 2
        for iters in range(1, 5):
            e, v = 3 * e + v, 2 * v + 1
            m = gen.mycielskian_graph(iterations=iters)
            assert m.nnz == 2 * e  # symmetric storage

    def test_triangle_free(self):
        # The Mycielskian of a triangle-free graph is triangle-free.
        m = gen.mycielskian_graph(iterations=3)
        dense = m.to_dense()
        cubed = dense @ dense @ dense
        assert np.trace(cubed) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gen.mycielskian_graph(iterations=-1)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: gen.road_graph(side=12, seed=42),
            lambda: gen.rmat_graph(scale=6, seed=42),
            lambda: gen.social_network(num_nodes=256, seed=42),
            lambda: gen.uniform_random(64, 64, 200, seed=42),
        ],
    )
    def test_same_seed_same_matrix(self, factory):
        assert factory() == factory()

    def test_different_seed_different_matrix(self):
        a = gen.rmat_graph(scale=6, seed=1)
        b = gen.rmat_graph(scale=6, seed=2)
        assert a != b
