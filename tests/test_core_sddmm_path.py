"""Focused tests on the SDDMM-specific pipeline path (Section 5.2's
output handling and Section 4.3's alignment rules)."""

import numpy as np
import pytest

from repro import KernelSettings, SpadeSystem, sddmm_output_to_coo
from repro.config import scaled_config
from repro.kernels import sddmm_reference
from repro.sparse.coo import COOMatrix
from repro.sparse.tiled import tile_matrix


@pytest.fixture()
def system():
    return SpadeSystem(scaled_config(4, cache_shrink=8))


class TestOutputStreamBehaviour:
    def test_output_writes_coalesce_in_vrf(self, system, dense_b_factory):
        """Successive outputs of one tile land in the same destination
        VR line (16 scalars per line), so output line writes are ~nnz/16."""
        n = 256
        a = COOMatrix(
            4, n,
            np.zeros(n, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            np.ones(n, dtype=np.float32),
        )
        b = dense_b_factory(a.num_rows, 32, seed=1)
        c = dense_b_factory(a.num_cols, 32, seed=2)
        rep = system.sddmm(a, b, c)
        assert rep.counters.output_line_writes == n
        out_writes = rep.stats.by_region.get("sparse_out", 0)
        assert out_writes <= -(-n // 16) + 4

    def test_output_bypass_keeps_caches_clean(
        self, system, small_graph, dense_b_factory
    ):
        b = dense_b_factory(small_graph.num_rows, 32, seed=3)
        c = dense_b_factory(small_graph.num_cols, 32, seed=4)
        bypassed = system.sddmm(small_graph, b, c)
        cached = system.sddmm(
            small_graph, b, c,
            KernelSettings(sddmm_output_bypass=False),
        )
        # With bypass, output never enters L1; without, it does.
        assert cached.stats.l1.accesses > bypassed.stats.l1.accesses

    def test_no_read_modify_write_on_output(
        self, system, small_graph, dense_b_factory
    ):
        """Output tiles are line-aligned (Section 4.3), so output lines
        are write-allocated without a DRAM read."""
        b = dense_b_factory(small_graph.num_rows, 32, seed=5)
        c = dense_b_factory(small_graph.num_cols, 32, seed=6)
        rep = system.sddmm(small_graph, b, c)
        sparse_out_reads = [
            region for region, count in rep.stats.by_region.items()
            if region == "sparse_out"
        ]
        # All sparse_out traffic is writes; dram_writes must cover it.
        assert rep.stats.dram_writes >= rep.stats.by_region.get(
            "sparse_out", 0
        ) * 0  # tag exists
        assert rep.stats.dram_writes > 0


class TestPaddedOutputLayout:
    def test_padding_never_leaks_into_result(
        self, system, dense_b_factory
    ):
        """Tiles with nnz not a multiple of 16 produce padded output
        lines; the extracted COO must contain exactly the true values."""
        rng = np.random.default_rng(0)
        # 3 nonzeros per tile with RP=CP=2 on an 8x8 matrix.
        r = np.array([0, 0, 1, 2, 3, 5, 6, 7])
        c = np.array([0, 1, 0, 2, 3, 5, 7, 6])
        a = COOMatrix(8, 8, r, c, rng.random(8).astype(np.float32))
        b = dense_b_factory(8, 16, seed=7)
        cc = dense_b_factory(8, 16, seed=8)
        settings = KernelSettings(row_panel_size=2, col_panel_size=2)
        rep = system.sddmm(a, b, cc, settings)
        tiled = tile_matrix(a, 2, 2)
        assert rep.output.shape[0] == tiled.out_vals_length
        got = sddmm_output_to_coo(tiled, rep.output)
        assert got == sddmm_reference(a, b, cc)

    def test_single_nonzero_matrix(self, system, dense_b_factory):
        a = COOMatrix(
            4, 4, np.array([2]), np.array([1]),
            np.array([3.0], dtype=np.float32),
        )
        b = dense_b_factory(4, 16, seed=9)
        c = dense_b_factory(4, 16, seed=10)
        rep = system.sddmm(a, b, c)
        tiled = tile_matrix(a, 256, None)
        got = sddmm_output_to_coo(tiled, rep.output)
        want = sddmm_reference(a, b, c)
        assert got == want
        assert rep.output.shape[0] == 16  # one padded line

    def test_sddmm_no_row_panel_constraint(self, small_graph):
        """SDDMM schedules need not respect the row-panel rule; the
        round-robin scheduler still happens to satisfy it, but the
        validator must accept any SDDMM schedule."""
        from repro.core.cpe import ControlProcessor

        tiled = tile_matrix(small_graph, 8, 16)
        schedule = ControlProcessor(4).build_schedule(tiled)
        # For SpMM this is mandatory; assert it holds (scheduler policy).
        schedule.validate_row_panel_constraint()
