"""Unit tests for the golden SpMM/SDDMM reference kernels."""

import numpy as np
import pytest

from repro.kernels.reference import (
    sddmm_reference,
    spmm_reference,
    spmm_reference_csr,
)
from repro.sparse.csr import CSRMatrix


class TestSpMM:
    def test_matches_dense_matmul(self, tiny_matrix, dense_b_factory):
        b = dense_b_factory(tiny_matrix.num_cols, 8)
        expected = tiny_matrix.to_dense() @ b
        np.testing.assert_allclose(
            spmm_reference(tiny_matrix, b), expected, rtol=1e-5
        )

    def test_matches_scipy(self, small_graph, dense_b_factory):
        b = dense_b_factory(small_graph.num_cols, 32)
        expected = small_graph.to_scipy() @ b
        np.testing.assert_allclose(
            spmm_reference(small_graph, b), expected, rtol=1e-4, atol=1e-4
        )

    def test_rectangular(self, random_rect, dense_b_factory):
        b = dense_b_factory(random_rect.num_cols, 16)
        out = spmm_reference(random_rect, b)
        assert out.shape == (random_rect.num_rows, 16)

    def test_csr_variant_agrees(self, random_rect, dense_b_factory):
        b = dense_b_factory(random_rect.num_cols, 8)
        csr = CSRMatrix.from_coo(random_rect)
        np.testing.assert_allclose(
            spmm_reference_csr(csr, b),
            spmm_reference(random_rect, b),
            rtol=1e-5, atol=1e-6,
        )

    def test_duplicate_rows_accumulate(self):
        from repro.sparse.coo import COOMatrix

        m = COOMatrix(
            2, 3, np.array([0, 0]), np.array([0, 2]),
            np.array([2.0, 3.0], dtype=np.float32),
        )
        b = np.eye(3, dtype=np.float32)
        out = spmm_reference(m, b)
        np.testing.assert_allclose(out[0], [2.0, 0.0, 3.0])

    def test_shape_mismatch(self, tiny_matrix):
        with pytest.raises(ValueError, match="rows"):
            spmm_reference(tiny_matrix, np.ones((7, 4), dtype=np.float32))


class TestSDDMM:
    def test_matches_dense_formula(self, tiny_matrix, dense_b_factory):
        k = 8
        b = dense_b_factory(tiny_matrix.num_rows, k, seed=1)
        c = dense_b_factory(tiny_matrix.num_cols, k, seed=2)
        out = sddmm_reference(tiny_matrix, b, c)
        expected = tiny_matrix.to_dense() * (b @ c.T)
        np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-5)

    def test_preserves_structure(self, small_graph, dense_b_factory):
        b = dense_b_factory(small_graph.num_rows, 16, seed=3)
        c = dense_b_factory(small_graph.num_cols, 16, seed=4)
        out = sddmm_reference(small_graph, b, c)
        np.testing.assert_array_equal(out.r_ids, small_graph.r_ids)
        np.testing.assert_array_equal(out.c_ids, small_graph.c_ids)

    def test_rectangular(self, random_rect, dense_b_factory):
        b = dense_b_factory(random_rect.num_rows, 8, seed=5)
        c = dense_b_factory(random_rect.num_cols, 8, seed=6)
        out = sddmm_reference(random_rect, b, c)
        assert out.shape == random_rect.shape

    def test_k_mismatch(self, tiny_matrix):
        b = np.ones((4, 8), dtype=np.float32)
        c = np.ones((4, 16), dtype=np.float32)
        with pytest.raises(ValueError, match="row size K"):
            sddmm_reference(tiny_matrix, b, c)

    def test_b_rows_mismatch(self, random_rect):
        b = np.ones((random_rect.num_rows + 1, 8), dtype=np.float32)
        c = np.ones((random_rect.num_cols, 8), dtype=np.float32)
        with pytest.raises(ValueError, match="B has"):
            sddmm_reference(random_rect, b, c)
