"""Unit tests for reordering utilities and MatrixMarket I/O."""

import io

import numpy as np
import pytest

from repro.kernels import spmm_reference
from repro.sparse.coo import COOMatrix
from repro.sparse.generators import banded, rmat_graph, social_network
from repro.sparse.io import (
    MatrixMarketError,
    read_matrix_market,
    roundtrip_string,
    write_matrix_market,
)
from repro.sparse.reorder import (
    apply_ordering,
    bandwidth,
    bfs_order,
    degree_sort,
    random_permutation,
)


class TestApplyOrdering:
    def test_identity_is_noop(self, small_graph):
        order = np.arange(small_graph.num_rows)
        assert apply_ordering(small_graph, order) == small_graph

    def test_preserves_nnz_and_values(self, small_graph):
        order = random_permutation(small_graph.num_rows, seed=1)
        out = apply_ordering(small_graph, order)
        assert out.nnz == small_graph.nnz
        assert np.allclose(np.sort(out.vals), np.sort(small_graph.vals))

    def test_spmm_equivalence_under_permutation(self, small_graph, rng):
        """Permuting A and the dense operand consistently permutes the
        result: P_r A P_c^T (P_c B) = P_r (A B)."""
        k = 8
        b = rng.random((small_graph.num_cols, k), dtype=np.float32)
        order = random_permutation(small_graph.num_rows, seed=2)
        permuted = apply_ordering(small_graph, order)
        b_perm = np.empty_like(b)
        b_perm[order] = b
        got = spmm_reference(permuted, b_perm)
        want = np.empty_like(got)
        want[order] = spmm_reference(small_graph, b)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_rejects_non_permutation(self, small_graph):
        bad = np.zeros(small_graph.num_rows, dtype=np.int64)
        with pytest.raises(ValueError, match="permutation"):
            apply_ordering(small_graph, bad)

    def test_rectangular_requires_col_order(self, random_rect):
        order = random_permutation(random_rect.num_rows, seed=3)
        with pytest.raises(ValueError, match="square"):
            apply_ordering(random_rect, order)
        col_order = random_permutation(random_rect.num_cols, seed=4)
        out = apply_ordering(random_rect, order, col_order)
        assert out.shape == random_rect.shape


class TestOrderings:
    def test_degree_sort_places_hubs_first(self):
        g = social_network(num_nodes=512, avg_degree=10, seed=9)
        reordered = apply_ordering(g, degree_sort(g))
        counts = reordered.row_nnz_counts() + reordered.col_nnz_counts()
        # The first decile must be denser than the last decile.
        tenth = len(counts) // 10
        assert counts[:tenth].mean() > counts[-tenth:].mean()

    def test_bfs_reduces_bandwidth_of_shuffled_band(self):
        base = banded(400, 3, seed=5)
        shuffled = apply_ordering(
            base, random_permutation(base.num_rows, seed=6)
        )
        recovered = apply_ordering(shuffled, bfs_order(shuffled))
        assert bandwidth(recovered) < bandwidth(shuffled) / 4

    def test_bfs_handles_disconnected_components(self):
        m = COOMatrix(
            6, 6,
            np.array([0, 1, 3, 4]), np.array([1, 0, 4, 3]),
            np.ones(4, dtype=np.float32),
        )
        order = bfs_order(m)
        assert sorted(order) == list(range(6))

    def test_bfs_rejects_rectangular(self, random_rect):
        with pytest.raises(ValueError, match="square"):
            bfs_order(random_rect)

    def test_random_permutation_deterministic(self):
        assert np.array_equal(
            random_permutation(50, seed=1), random_permutation(50, seed=1)
        )

    def test_bandwidth_empty(self):
        empty = COOMatrix(3, 3, np.array([]), np.array([]), np.array([]))
        assert bandwidth(empty) == 0


class TestMatrixMarket:
    def test_roundtrip(self, small_graph):
        text = roundtrip_string(small_graph)
        again = read_matrix_market(io.StringIO(text))
        assert again == small_graph

    def test_roundtrip_through_file(self, tmp_path, tiny_matrix):
        path = tmp_path / "m.mtx"
        write_matrix_market(tiny_matrix, path)
        assert read_matrix_market(path) == tiny_matrix

    def test_pattern_matrix(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 3 2\n1 1\n2 3\n"
        )
        m = read_matrix_market(io.StringIO(text))
        assert m.nnz == 2
        assert set(np.unique(m.vals)) == {1.0}

    def test_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% lower triangle only\n"
            "3 3 3\n"
            "1 1 5.0\n2 1 1.0\n3 2 2.0\n"
        )
        m = read_matrix_market(io.StringIO(text))
        dense = m.to_dense()
        assert dense[0, 1] == dense[1, 0] == 1.0
        assert dense[1, 2] == dense[2, 1] == 2.0
        assert dense[0, 0] == 5.0  # diagonal not duplicated
        assert m.nnz == 5

    def test_header_required(self):
        with pytest.raises(MatrixMarketError, match="header"):
            read_matrix_market(io.StringIO("1 1 0\n"))

    def test_unsupported_format(self):
        text = "%%MatrixMarket matrix array real general\n"
        with pytest.raises(MatrixMarketError, match="coordinate"):
            read_matrix_market(io.StringIO(text))

    def test_unsupported_field(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"
        with pytest.raises(MatrixMarketError, match="field"):
            read_matrix_market(io.StringIO(text))

    def test_malformed_entry(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n1 1\n"
        )
        with pytest.raises(MatrixMarketError, match="malformed"):
            read_matrix_market(io.StringIO(text))

    def test_one_indexing_on_disk(self, tiny_matrix):
        text = roundtrip_string(tiny_matrix)
        body = [
            ln for ln in text.splitlines()
            if not ln.startswith("%")
        ][1:]
        first_cols = {int(ln.split()[0]) for ln in body}
        assert min(first_cols) >= 1
