"""Unit tests for the metrics registry and its exporters."""

import json

import pytest

from repro.telemetry import (
    NULL_INSTRUMENT,
    MetricsRegistry,
    to_csv,
    to_json,
    to_prometheus,
    write_metrics,
)
from repro.telemetry.registry import Histogram


class TestLabelSemantics:
    def test_same_labels_same_child(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", level="l1", unit="pe0")
        b = reg.counter("hits", unit="pe0", level="l1")  # order-free
        assert a is b

    def test_different_labels_different_children(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", level="l1")
        b = reg.counter("hits", level="l2")
        assert a is not b
        a.inc(3)
        b.inc(5)
        assert reg.value("hits", level="l1") == 3
        assert reg.value("hits", level="l2") == 5

    def test_label_values_coerced_to_str(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", pe=0)
        b = reg.counter("hits", pe="0")
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="counter"):
            reg.gauge("x")

    def test_label_key_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", level="l1")
        with pytest.raises(ValueError, match="labels"):
            reg.counter("x", unit="pe0")

    def test_total_filters_by_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits", level="l1", unit="pe0").inc(1)
        reg.counter("hits", level="l1", unit="pe1").inc(2)
        reg.counter("hits", level="l2", unit="g0").inc(10)
        assert reg.total("hits", level="l1") == 3
        assert reg.total("hits") == 13
        assert reg.total("absent") == 0

    def test_value_of_unregistered_is_zero(self):
        assert MetricsRegistry().value("nope", level="l1") == 0.0


class TestDisabledMode:
    def test_all_kinds_return_the_shared_null_instrument(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a", level="l1") is NULL_INSTRUMENT
        assert reg.gauge("b") is NULL_INSTRUMENT
        assert reg.histogram("c", pe="3") is NULL_INSTRUMENT
        # Identity across distinct names/labels: nothing is allocated.
        assert reg.counter("a") is reg.counter("zzz", any="label")

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a").inc(100)
        reg.gauge("b").set(5)
        reg.histogram("c").observe(7)
        assert len(reg) == 0
        assert list(reg.samples()) == []
        assert reg.as_dict()["metrics"] == []

    def test_null_instrument_is_inert(self):
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.set(9)
        NULL_INSTRUMENT.observe(3.5)
        assert NULL_INSTRUMENT.value == 0.0


class TestInstruments:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(2.5)
        g.inc(0.5)
        assert g.value == 3.0

    def test_histogram_buckets_and_stats(self):
        h = Histogram(bounds=(1, 4, 16))
        for v in (0, 1, 3, 20):
            h.observe(v)
        assert h.count == 4
        assert h.total == 24
        assert (h.min, h.max) == (0, 20)
        assert h.mean == 6.0
        # le=1 cumulative 2 (0 and 1), le=4 cumulative 3, le=16 still 3,
        # +Inf catches 20.
        assert h.cumulative_buckets() == [
            (1, 2), (4, 3), (16, 3), (float("inf"), 4)
        ]

    def test_histogram_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(4, 1))


@pytest.fixture()
def populated():
    reg = MetricsRegistry()
    reg.counter("spade_hits_total", help="hits", level="l1").inc(7)
    reg.gauge("spade_imbalance").set(1.25)
    h = reg.histogram("spade_batch", bounds=(10, 100))
    h.observe(5)
    h.observe(50)
    return reg


class TestExporters:
    def test_json_round_trips(self, populated):
        doc = json.loads(to_json(populated))
        assert doc["schema_version"] == 1
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["spade_hits_total"]["value"] == 7
        assert by_name["spade_hits_total"]["labels"] == {"level": "l1"}
        hist = by_name["spade_batch"]
        assert hist["count"] == 2 and hist["sum"] == 55
        assert hist["buckets"][-1]["le"] == "+Inf"

    def test_csv_has_one_row_per_child(self, populated):
        lines = to_csv(populated).strip().splitlines()
        assert lines[0].startswith("name,kind,labels")
        assert len(lines) == 4  # header + 3 children
        assert any("level=l1" in ln for ln in lines)

    def test_prometheus_format(self, populated):
        text = to_prometheus(populated)
        assert "# TYPE spade_hits_total counter" in text
        assert 'spade_hits_total{level="l1"} 7' in text
        assert 'spade_batch_bucket{le="+Inf"} 2' in text
        assert "spade_batch_sum 55" in text
        assert "spade_batch_count 2" in text
        assert "# HELP spade_hits_total hits" in text

    def test_prometheus_escapes_label_values(self):
        # The exposition format requires backslash-escaping of \, ", and
        # newline inside label values; an unescaped value would corrupt
        # the whole scrape.
        reg = MetricsRegistry()
        reg.counter(
            "spade_paths_total",
            path='C:\\tmp\\"run"\nnext',
        ).inc(1)
        text = to_prometheus(reg)
        assert (
            'spade_paths_total{path="C:\\\\tmp\\\\\\"run\\"\\nnext"} 1'
            in text
        )
        assert "\n\nnext" not in text  # no literal newline inside a value

    def test_prometheus_escape_round_trips(self):
        from repro.telemetry.exporters import _prom_escape

        assert _prom_escape('a"b') == 'a\\"b'
        assert _prom_escape("a\\b") == "a\\\\b"
        assert _prom_escape("a\nb") == "a\\nb"
        assert _prom_escape("plain") == "plain"

    def test_prometheus_empty_histogram_renders(self):
        # A histogram with zero observations must still expose its
        # cumulative buckets (all 0), a 0 sum, and a 0 count.
        reg = MetricsRegistry()
        reg.histogram("spade_empty", bounds=(1, 10))
        text = to_prometheus(reg)
        assert 'spade_empty_bucket{le="1"} 0' in text
        assert 'spade_empty_bucket{le="10"} 0' in text
        assert 'spade_empty_bucket{le="+Inf"} 0' in text
        assert "spade_empty_sum 0" in text
        assert "spade_empty_count 0" in text

    def test_write_metrics_infers_format(self, populated, tmp_path):
        j = write_metrics(populated, tmp_path / "m.json")
        c = write_metrics(populated, tmp_path / "m.csv")
        p = write_metrics(populated, tmp_path / "m.prom")
        assert json.loads(j.read_text())["schema_version"] == 1
        assert c.read_text().startswith("name,kind")
        assert "# TYPE" in p.read_text()
        with pytest.raises(ValueError):
            write_metrics(populated, tmp_path / "m.xml", fmt="xml")
