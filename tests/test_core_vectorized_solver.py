"""Differential check: the whole-epoch VRF solver vs the scalar walker.

``_solve_vrf_epoch`` is the fused fast path behind whole-epoch trace
generation: it resolves an entire epoch's VRF access stream in NumPy
(hit/miss classification, eviction order, writeback scheduling, trace
emission) in one shot.  ``_run_vrf_stream`` is the per-access reference
walker.  The two must agree exactly — emitted trace arrays, all five
VRF counters, the dirty count, and the *ordered* resident-tag map that
seeds the next epoch — across multiple warm epochs so carried state is
covered, not just the cold start.

The grid deliberately includes a large case (``cap=64`` with a long,
wide-reuse stream) that drives the suffix kill-pass in the solver's
marginal-window tier; parity there pins that the kill-pass only ever
prunes queries the exact tier would have rejected anyway.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vectorized import (
    _OP_NONE,
    TraceBuffer,
    _run_vrf_stream,
    _solve_vrf_epoch,
)
from repro.core.vrf import VectorRegisterFile

_OP_STORE = 1000

_VRF_COUNTERS = (
    "tag_hits",
    "tag_misses",
    "evictions",
    "eviction_writebacks",
    "manager_writebacks",
    "_dirty_count",
)


class _StubPE:
    """Just enough PE surface for ``_run_vrf_stream``."""

    def __init__(self, vrf: VectorRegisterFile) -> None:
        self.vrf = vrf
        self._trace = TraceBuffer()
        self._op_store = _OP_STORE


def _random_stream(rng, n, nlines, line_dirty, none_frac=0.1):
    lines = rng.integers(0, nlines, size=n).astype(np.int64)
    dirty = line_dirty[lines]
    emit = rng.integers(0, 32, size=n).astype(np.int64)
    emit[rng.random(n) < none_frac] = _OP_NONE
    return lines, dirty, emit


def _check_epochs(streams, cap, label):
    """Feed the same epoch streams through walker and solver, asserting
    bitwise agreement after every epoch (so carried VRF state between
    epochs is exercised, not just the cold start)."""
    vrf_oracle = VectorRegisterFile(cap, 0.25, 0.15)
    vrf_solver = VectorRegisterFile(cap, 0.25, 0.15)
    pe = _StubPE(vrf_oracle)
    for ep, (lines, dirty, emit) in enumerate(streams):
        pe._trace.clear()
        _run_vrf_stream(pe, lines, dirty, emit, 0)
        want_lines, want_ops = pe._trace.views()
        want_lines = want_lines.copy()
        want_ops = want_ops.copy()

        sol = _solve_vrf_epoch(
            cap,
            vrf_solver._high,
            vrf_solver._low,
            list(vrf_solver._tags.items()),
            vrf_solver._dirty_count,
            lines,
            dirty,
            emit,
            _OP_STORE,
        )
        assert sol is not None, f"{label} ep{ep}: solver declined"
        (hits, misses, evc, evw, mwb, dc, new_tags,
         got_lines, got_ops, got_pos) = sol

        np.testing.assert_array_equal(
            got_lines, want_lines, err_msg=f"{label} ep{ep}: trace lines"
        )
        np.testing.assert_array_equal(
            got_ops, want_ops, err_msg=f"{label} ep{ep}: trace ops"
        )
        assert np.all(np.diff(got_pos) >= 0), (
            f"{label} ep{ep}: emit positions not monotone"
        )

        vrf_solver.tag_hits += hits
        vrf_solver.tag_misses += misses
        vrf_solver.evictions += evc
        vrf_solver.eviction_writebacks += evw
        vrf_solver.manager_writebacks += mwb
        vrf_solver._dirty_count = dc
        vrf_solver._tags.clear()
        vrf_solver._tags.update(new_tags)

        for attr in _VRF_COUNTERS:
            assert getattr(vrf_oracle, attr) == getattr(vrf_solver, attr), (
                f"{label} ep{ep}: {attr} "
                f"{getattr(vrf_oracle, attr)} != {getattr(vrf_solver, attr)}"
            )
        # Order matters: insertion order is the eviction order the next
        # epoch starts from.
        assert (
            list(vrf_oracle._tags.items())
            == list(vrf_solver._tags.items())
        ), f"{label} ep{ep}: resident tags diverged"


@pytest.mark.parametrize("cap", [4, 16, 64])
@pytest.mark.parametrize("dirty_frac", [0.0, 0.3, 1.0])
def test_solver_matches_walker_random_grid(cap, dirty_frac):
    rng = np.random.default_rng(7 + cap)
    for nlines in (2, cap // 2 + 1, cap * 2, 500):
        for n in (1, 50, 400):
            line_dirty = rng.random(nlines) < dirty_frac
            streams = [
                _random_stream(rng, n, nlines, line_dirty)
                for _ in range(3)
            ]
            _check_epochs(
                streams, cap,
                f"cap={cap} nl={nlines} df={dirty_frac} n={n}",
            )


def test_solver_matches_walker_csr_shaped():
    """Run-length streams: consecutive repeats of each line, the shape
    CSR row panels actually generate."""
    rng = np.random.default_rng(3)
    for cap in (8, 64):
        base = np.repeat(np.arange(40, dtype=np.int64), 50)
        streams = []
        for _ in range(3):
            lines = base + int(rng.integers(0, 3)) * 100
            dirty = lines % 2 == 0
            emit = np.full(base.size, 7, dtype=np.int64)
            streams.append((lines, dirty, emit))
        _check_epochs(streams, cap, f"csr cap={cap}")


def test_solver_matches_walker_suffix_pass_regime():
    """Large-cap, wide-reuse stream: every marginal window's suffix
    holds >= cap distinct lines, so the suffix kill-pass prunes the
    whole exact tier — parity proves the pruning is sound."""
    rng = np.random.default_rng(11)
    cap = 64
    nlines = 300
    line_dirty = rng.random(nlines) < 0.3
    streams = [
        _random_stream(rng, 20_000, nlines, line_dirty)
        for _ in range(2)
    ]
    _check_epochs(streams, cap, "suffix-pass cap=64 n=20000")
