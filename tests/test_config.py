"""Unit tests for system configuration and scaling."""

import pytest

from repro.config import (
    CACHE_LINE_BYTES,
    CacheConfig,
    ELEMS_PER_LINE,
    as_dict,
    config_summary,
    mini_config,
    paper_config,
    scaled_config,
)


class TestTable1Defaults:
    """The paper_config must reproduce Table 1."""

    def test_pe_parameters(self):
        pe = paper_config().pe
        assert pe.frequency_ghz == 0.8
        assert pe.issue_vops_per_cycle == 1
        assert pe.num_vector_registers == 64
        assert pe.writeback_high_threshold == 0.25
        assert pe.writeback_low_threshold == 0.15
        assert pe.dense_load_queue_entries == 32
        assert pe.sparse_load_queue_entries == 6
        assert pe.store_queue_entries == 8
        assert pe.vop_rs_entries == 32
        assert pe.l1d.size_bytes == 32 * 1024
        assert pe.bbf_entries == 32
        assert pe.victim_cache.size_bytes == 16 * 1024

    def test_system_parameters(self):
        cfg = paper_config()
        assert cfg.num_pes == 224
        assert cfg.memory.pes_per_l2 == 4
        assert cfg.num_l2s == 56
        assert cfg.memory.dram_peak_gbps == 410.0
        assert cfg.memory.dram_achievable_gbps == 304.0
        assert cfg.memory.link_latency_ns == 60.0
        # Total L1: 224 x 32 KB = 7 MB (Table 1 says 7.2 MB incl. tags).
        assert cfg.total_l1_bytes == 224 * 32 * 1024

    def test_host_parameters(self):
        host = paper_config().host
        assert host.num_cores == 56
        assert host.tdp_watts == 470.0
        assert host.llc_total_bytes == 84 * 1024 * 1024

    def test_derived_constants(self):
        assert CACHE_LINE_BYTES == 64
        assert ELEMS_PER_LINE == 16


class TestScaledSystems:
    def test_spade_n_scaling(self):
        """Section 7.E: SPADEn scales PEs, DRAM BW, LLC, link latency."""
        base = paper_config()
        for factor in (2, 4, 8):
            scaled = base.scaled(factor)
            assert scaled.num_pes == 224 * factor
            assert scaled.memory.dram_achievable_gbps == 304.0 * factor
            assert scaled.memory.num_llc_slices == 56 * factor
            assert scaled.memory.link_latency_ns == 60.0 * factor
            assert scaled.name == f"SPADE{factor}"

    def test_scaled_config_preserves_per_pe_ratios(self):
        cfg = scaled_config(28)
        base = paper_config()
        assert cfg.num_pes == 28
        per_pe_bw = cfg.memory.dram_achievable_gbps / cfg.num_pes
        base_per_pe = base.memory.dram_achievable_gbps / base.num_pes
        assert per_pe_bw == pytest.approx(base_per_pe)

    def test_cache_shrink_scales_shared_caches(self):
        plain = scaled_config(8)
        shrunk = scaled_config(8, cache_shrink=32)
        assert shrunk.memory.llc_slice.size_bytes < (
            plain.memory.llc_slice.size_bytes
        )
        assert shrunk.memory.l2.size_bytes < plain.memory.l2.size_bytes
        assert shrunk.host.llc_total_bytes < plain.host.llc_total_bytes
        # L1 shrinks at most 8x; BBF is untouched.
        assert shrunk.pe.l1d.size_bytes >= plain.pe.l1d.size_bytes // 8
        assert shrunk.pe.bbf_entries == plain.pe.bbf_entries

    def test_shrunk_caches_keep_alignment(self):
        cfg = scaled_config(8, cache_shrink=32)
        for cache in (cfg.pe.l1d, cfg.memory.l2, cfg.memory.llc_slice):
            assert cache.num_sets >= 1
            assert cache.size_bytes % (
                cache.associativity * cache.line_bytes
            ) == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            scaled_config(0)
        with pytest.raises(ValueError):
            scaled_config(8, cache_shrink=0.5)
        with pytest.raises(ValueError):
            paper_config().scaled(0)

    def test_mini_config(self):
        cfg = mini_config(4)
        assert cfg.num_pes == 4
        assert cfg.memory.num_llc_slices == 1


class TestUtilities:
    def test_cache_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1001, associativity=2)

    def test_summary_mentions_key_values(self):
        text = config_summary(paper_config())
        assert "224" in text
        assert "0.8 GHz" in text

    def test_as_dict_roundtrippable(self):
        d = as_dict(paper_config())
        assert d["num_pes"] == 224
        assert d["pe"]["num_vector_registers"] == 64


class TestReplayRegistry:
    """The trace-replay backend registry behind ``SpadeConfig.replay``."""

    def test_builtin_modes_registered(self):
        from repro.config import REPLAY_MODES, replay_modes

        assert set(replay_modes()) >= {"scalar", "batched", "array"}
        assert REPLAY_MODES == replay_modes()

    def test_validation_error_names_registry_modes(self):
        import dataclasses

        from repro.config import replay_modes
        from repro.errors import ConfigError

        with pytest.raises(ConfigError) as exc:
            dataclasses.replace(scaled_config(2), replay="bogus")
        message = str(exc.value)
        assert "'bogus'" in message
        for mode in replay_modes():
            assert mode in message

    def test_unknown_backend_lookup_names_modes(self):
        from repro.config import replay_backend_spec, replay_modes
        from repro.errors import ConfigError

        with pytest.raises(ConfigError) as exc:
            replay_backend_spec("nope")
        for mode in replay_modes():
            assert mode in str(exc.value)

    def test_backends_resolve_to_callables(self):
        from repro.config import replay_modes, resolve_replay_backend

        for mode in replay_modes():
            assert callable(resolve_replay_backend(mode))

    def test_register_collision_and_unregister(self):
        import dataclasses

        from repro.config import (
            register_replay_backend,
            replay_modes,
            unregister_replay_backend,
        )
        from repro.errors import ConfigError

        register_replay_backend(
            "adhoc", "repro.memory.hierarchy:replay_backend_batched"
        )
        try:
            # The live registry, not the import-time snapshot, drives
            # validation: an ad-hoc mode is immediately usable.
            assert "adhoc" in replay_modes()
            cfg = dataclasses.replace(scaled_config(2), replay="adhoc")
            assert cfg.replay == "adhoc"
            with pytest.raises(ConfigError):
                register_replay_backend(
                    "adhoc", "repro.memory.hierarchy:replay_backend_scalar"
                )
            register_replay_backend(
                "adhoc",
                "repro.memory.hierarchy:replay_backend_scalar",
                overwrite=True,
            )
        finally:
            unregister_replay_backend("adhoc")
        assert "adhoc" not in replay_modes()

    def test_malformed_loader_raises_on_resolve(self):
        from repro.config import (
            register_replay_backend,
            replay_backend_spec,
            unregister_replay_backend,
        )
        from repro.errors import ConfigError

        register_replay_backend("badloader", "repro.memory.hierarchy")
        try:
            with pytest.raises(ConfigError):
                replay_backend_spec("badloader").resolve()
        finally:
            unregister_replay_backend("badloader")

    def test_degradation_ladder_fastest_first(self):
        from repro.config import replay_degradation_ladder

        ladder = replay_degradation_ladder()
        assert ladder[0] == "array"
        assert ladder[-1] == "scalar"
        assert list(ladder).index("batched") < list(ladder).index("scalar")
