"""Unit tests for the cross-process locking primitives."""

import os
import time

import pytest

from repro.locks import FileLock, LockTimeout, exclusive_tmp_path


class TestFileLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"), timeout_s=1.0)
        with lock:
            assert lock.held
            assert os.path.exists(lock.path)
        assert not lock.held
        assert not os.path.exists(lock.path)

    def test_contention_times_out(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with FileLock(path, timeout_s=1.0):
            blocked = FileLock(
                path, timeout_s=0.05, poll_s=0.01, stale_s=None
            )
            with pytest.raises(LockTimeout):
                blocked.acquire()

    def test_stale_lock_is_broken(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with open(path, "w") as fh:
            fh.write("999999")  # dead holder
        old = time.time() - 3600
        os.utime(path, (old, old))
        lock = FileLock(path, timeout_s=1.0, stale_s=60.0)
        with lock:
            assert lock.held

    def test_future_mtime_reads_as_fresh_not_negative(self, tmp_path):
        # Regression: clock skew (or a touched lockfile) can put the
        # mtime in the future.  The age must clamp to 0 — a fresh lock
        # that contenders wait on — never a negative number.
        path = str(tmp_path / "x.lock")
        with open(path, "w") as fh:
            fh.write("123")
        future = time.time() + 3600
        os.utime(path, (future, future))
        lock = FileLock(path, timeout_s=0.05, poll_s=0.01, stale_s=60.0)
        lock._break_if_stale()
        assert os.path.exists(path)  # not treated as stale
        with pytest.raises(LockTimeout):
            lock.acquire()  # still held by the (future-dated) owner
        # Negative stale_s is pathological config; the clamp keeps even
        # that from breaking a future-dated lock (age 0 > negative is
        # True, so it *would* break — assert the clamp floor first).
        st = os.stat(path)
        assert max(0.0, time.time() - st.st_mtime) == 0.0


class TestExclusiveTmpPath:
    def test_distinct_paths_per_call(self, tmp_path):
        target = str(tmp_path / "payload.json")
        a = exclusive_tmp_path(target)
        b = exclusive_tmp_path(target)
        assert a != b
        assert os.path.exists(a) and os.path.exists(b)

    def test_publish_via_replace(self, tmp_path):
        target = str(tmp_path / "payload.json")
        tmp = exclusive_tmp_path(target)
        with open(tmp, "w") as fh:
            fh.write("{}")
        os.replace(tmp, target)
        assert open(target).read() == "{}"
