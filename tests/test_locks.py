"""Unit tests for the cross-process locking primitives."""

import os
import time

import pytest

import repro.locks
from repro.locks import FileLock, LockTimeout, exclusive_tmp_path


class TestFileLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"), timeout_s=1.0)
        with lock:
            assert lock.held
            assert os.path.exists(lock.path)
        assert not lock.held
        assert not os.path.exists(lock.path)

    def test_contention_times_out(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with FileLock(path, timeout_s=1.0):
            blocked = FileLock(
                path, timeout_s=0.05, poll_s=0.01, stale_s=None
            )
            with pytest.raises(LockTimeout):
                blocked.acquire()

    def test_stale_lock_is_broken(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with open(path, "w") as fh:
            fh.write("999999")  # dead holder
        old = time.time() - 3600
        os.utime(path, (old, old))
        lock = FileLock(path, timeout_s=1.0, stale_s=60.0)
        with lock:
            assert lock.held

    def test_future_mtime_reads_as_fresh_not_negative(self, tmp_path):
        # Regression: clock skew (or a touched lockfile) can put the
        # mtime in the future.  The age must clamp to 0 — a fresh lock
        # that contenders wait on — never a negative number.
        path = str(tmp_path / "x.lock")
        with open(path, "w") as fh:
            fh.write("123")
        future = time.time() + 3600
        os.utime(path, (future, future))
        lock = FileLock(path, timeout_s=0.05, poll_s=0.01, stale_s=60.0)
        lock._break_if_stale()
        assert os.path.exists(path)  # not treated as stale
        with pytest.raises(LockTimeout):
            lock.acquire()  # still held by the (future-dated) owner
        # Negative stale_s is pathological config; the clamp keeps even
        # that from breaking a future-dated lock (age 0 > negative is
        # True, so it *would* break — assert the clamp floor first).
        st = os.stat(path)
        assert max(0.0, time.time() - st.st_mtime) == 0.0


    def test_release_does_not_unlink_a_stolen_lock(self, tmp_path):
        # Regression: holder A's lock goes stale, B breaks it and
        # re-acquires.  When A finally calls release(), it must leave
        # B's lockfile alone — the owner token makes release verify
        # before unlinking.
        path = str(tmp_path / "x.lock")
        a = FileLock(path, timeout_s=1.0, stale_s=60.0)
        a.acquire()
        old = time.time() - 3600
        os.utime(path, (old, old))  # A looks dead
        b = FileLock(path, timeout_s=1.0, stale_s=60.0)
        b.acquire()  # breaks A's stale lock and claims it
        a.release()  # A wakes up late
        assert os.path.exists(path), "A deleted B's lockfile"
        assert b.held
        b.release()
        assert not os.path.exists(path)

    def test_release_after_clean_break_is_quiet(self, tmp_path):
        path = str(tmp_path / "x.lock")
        lock = FileLock(path, timeout_s=1.0)
        lock.acquire()
        os.unlink(path)  # someone broke it entirely
        lock.release()  # must not raise
        assert not lock.held

    def test_owner_token_contains_pid(self, tmp_path):
        # The pid prefix keeps stale-lock diagnosis possible (the old
        # content was just the pid).
        path = str(tmp_path / "x.lock")
        with FileLock(path, timeout_s=1.0):
            content = open(path).read()
        assert content.split(":")[0] == str(os.getpid())

    def test_backoff_grows_and_caps(self, tmp_path, monkeypatch):
        # Contended polling must back off exponentially (with jitter in
        # [delay/2, delay]) up to max_poll_s, not spin at a fixed rate.
        sleeps = []

        def record(seconds):
            sleeps.append(seconds)
            time.sleep(0.002)  # keep the contended loop bounded

        monkeypatch.setattr(repro.locks, "_sleep", record)
        path = str(tmp_path / "x.lock")
        with FileLock(path, timeout_s=1.0):
            blocked = FileLock(
                path, timeout_s=0.2, poll_s=0.01, stale_s=None,
                max_poll_s=0.04,
            )
            with pytest.raises(LockTimeout):
                blocked.acquire()
        assert len(sleeps) >= 4
        # First probe's sleep comes from the base delay (jitter can
        # halve it, never raise it).
        assert 0.005 <= sleeps[0] <= 0.01
        assert 0.01 <= sleeps[1] <= 0.02
        # Two doublings reach max_poll_s and stay capped there (the
        # last sleep may be truncated to the deadline, so skip it).
        for s in sleeps[2:4]:
            assert 0.02 <= s <= 0.04
        for s in sleeps:
            assert s <= 0.04 + 1e-9

    def test_uncontended_acquire_never_sleeps(self, tmp_path, monkeypatch):
        # First-probe latency must be unchanged by the backoff.
        sleeps = []
        monkeypatch.setattr(
            repro.locks, "_sleep", lambda s: sleeps.append(s)
        )
        with FileLock(str(tmp_path / "x.lock"), timeout_s=1.0):
            pass
        assert sleeps == []


class TestExclusiveTmpPath:
    def test_distinct_paths_per_call(self, tmp_path):
        target = str(tmp_path / "payload.json")
        a = exclusive_tmp_path(target)
        b = exclusive_tmp_path(target)
        assert a != b
        assert os.path.exists(a) and os.path.exists(b)

    def test_publish_via_replace(self, tmp_path):
        target = str(tmp_path / "payload.json")
        tmp = exclusive_tmp_path(target)
        with open(tmp, "w") as fh:
            fh.write("{}")
        os.replace(tmp, target)
        assert open(target).read() == "{}"
