"""Unit tests for the Table 3 search space and the SPADE Opt autotuner."""

import pytest

from repro.core.accelerator import KernelSettings
from repro.tuning.autotune import autotune, clear_memo
from repro.tuning.space import (
    opt_search_space,
    paper_col_panels,
    paper_row_panels,
    quick_search_space,
    scaled_col_panels,
)


class TestSearchSpace:
    def test_paper_row_panels_literal(self):
        assert paper_row_panels() == [64, 256, 1024]

    def test_paper_row_panels_divided(self):
        assert paper_row_panels(8) == [8, 32, 128]
        assert paper_row_panels(1000) == [2, 2, 2]

    def test_paper_col_panels_by_k(self):
        assert paper_col_panels(32) == [8192, 524288, None]
        assert paper_col_panels(128) == [2048, 131072, None]

    def test_scaled_col_panels_ordered(self):
        small, medium, all_cols = scaled_col_panels(65536)
        assert all_cols is None
        assert small < medium < 65536

    def test_scaled_col_panels_tiny_matrix(self):
        small, medium, _ = scaled_col_panels(100)
        assert small >= 1 and medium > small

    def test_space_includes_base(self, small_graph):
        space = opt_search_space(small_graph, 32)
        assert KernelSettings.base() in space

    def test_barriers_only_on_medium_panel(self, small_graph):
        space = opt_search_space(small_graph, 32)
        mediums = {
            s.col_panel_size for s in space if s.use_barriers
        }
        assert len(mediums) == 1
        assert None not in mediums

    def test_bypass_doubles_points(self, small_graph):
        with_b = opt_search_space(small_graph, 32, include_bypass=True)
        without = opt_search_space(small_graph, 32, include_bypass=False)
        assert len(with_b) == 2 * len(without)

    def test_small_matrix_gets_extra_row_panel(self, small_graph):
        # small_graph has 128 rows < threshold -> RP=16 included.
        space = opt_search_space(small_graph, 32)
        assert any(s.row_panel_size == 16 for s in space)

    def test_paper_mode(self, small_graph):
        space = opt_search_space(small_graph, 32, mode="paper")
        cps = {s.col_panel_size for s in space}
        assert 8192 in cps

    def test_bad_mode(self, small_graph):
        with pytest.raises(ValueError, match="unknown mode"):
            opt_search_space(small_graph, 32, mode="bogus")

    def test_quick_space_is_small(self, small_graph):
        quick = quick_search_space(small_graph, 32)
        full = opt_search_space(small_graph, 32)
        assert len(quick) < len(full)


class TestAutotuner:
    def test_finds_best_of_space(self, small_system, small_graph):
        clear_memo()
        space = [
            KernelSettings(),
            KernelSettings(row_panel_size=16, col_panel_size=32),
        ]
        result = autotune(
            small_system, small_graph, "spmm", 32, space=space
        )
        assert result.best_settings in space
        assert result.best_time_ns == min(t for _, t in result.trials)
        assert len(result.trials) == len(space)

    def test_ranked_is_sorted(self, small_system, small_graph):
        clear_memo()
        result = autotune(
            small_system, small_graph, "spmm", 32, quick=True
        )
        times = [t for _, t in result.ranked()]
        assert times == sorted(times)

    def test_speedup_over_base(self, small_system, small_graph):
        clear_memo()
        space = [KernelSettings(), KernelSettings(row_panel_size=16)]
        result = autotune(
            small_system, small_graph, "spmm", 32, space=space
        )
        assert result.speedup_over_base >= 1.0

    def test_memoisation(self, small_system, small_graph):
        clear_memo()
        r1 = autotune(small_system, small_graph, "spmm", 32, quick=True)
        r2 = autotune(small_system, small_graph, "spmm", 32, quick=True)
        assert r1 is r2

    def test_sddmm_supported(self, small_system, small_graph):
        clear_memo()
        result = autotune(
            small_system, small_graph, "sddmm", 32, quick=True
        )
        assert result.best_time_ns > 0

    def test_rejects_unknown_kernel(self, small_system, small_graph):
        with pytest.raises(ValueError, match="spmm"):
            autotune(small_system, small_graph, "spgemm", 32)
