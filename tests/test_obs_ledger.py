"""Unit tests for the run-ledger flight recorder (repro.obs)."""

import json

import numpy as np
import pytest

from repro.obs import (
    EVENT_TYPES,
    LEDGER_SCHEMA_VERSION,
    NULL_LEDGER,
    LedgerSchemaError,
    RunLedger,
    aggregate,
    as_json_schema,
    derive_run_id,
    file_digest,
    format_report,
    merge_shards,
    open_run_ledger,
    peak_rss_bytes,
    read_events,
    shard_path,
    validate_event,
    validate_ledgers,
)


def _ev(etype="run_start", **overrides):
    """A schema-valid event of the given type."""
    base = {
        "run_start": {
            "kernel": "spmm", "execution": "vectorized",
            "replay": "array", "config_fingerprint": "ab" * 32,
            "pid": 1,
        },
        "run_end": {"status": "ok", "wall_s": 0.5},
        "epoch": {
            "epoch": 0, "gen_s": 0.1, "merge_s": 0.02, "replay_s": 0.2,
            "epoch_time_ns": 1e6, "dram_lines": 10, "critical_pe": 0,
        },
        "checkpoint": {"epoch": 0, "wall_s": 0.01},
        "retry": {
            "attempt": 1, "execution": "vectorized", "replay": "array",
            "cause": "OSError('x')", "backoff_s": 0.05,
        },
        "degradation": {
            "from_execution": "pipelined", "from_replay": "array",
            "to_execution": "vectorized", "to_replay": "batched",
            "cause": "WatchdogTimeout('t')",
        },
        "sweep_job": {
            "index": 0, "status": "completed", "key": "ff" * 32,
            "driver": "run",
        },
        "cache_hit": {"index": 1, "key": "ee" * 32, "driver": "run"},
        "service": {
            "status": "served", "key": "dd" * 32, "tenant": "anonymous",
            "priority": "interactive", "source": "memo", "code": 200,
            "wall_s": 0.001,
        },
        "trace_cache": {
            "epoch": 0, "status": "hit", "key": "cd" * 32, "pes": 8,
            "wall_s": 0.002,
        },
        "dispatch": {
            "cache": "L1", "level": "l1", "events": 500,
            "miss_rate": 0.2, "hint": True, "predicted_py_us": 120.0,
            "predicted_array_us": 90.0, "chosen": "array",
            "measured_us": 95.0,
        },
    }[etype]
    ev = dict(base)
    ev.update({"e": etype, "t": 0.1, "run": "a" * 16})
    ev.update(overrides)
    return ev


class TestSchema:
    def test_every_type_has_a_valid_exemplar(self):
        for etype in EVENT_TYPES:
            validate_event(_ev(etype))

    def test_unknown_type_rejected(self):
        with pytest.raises(LedgerSchemaError, match="unknown event"):
            validate_event(_ev("run_end", e="nope"))

    def test_missing_required_field_rejected(self):
        ev = _ev("dispatch")
        del ev["measured_us"]
        with pytest.raises(LedgerSchemaError, match="measured_us"):
            validate_event(ev)

    def test_unknown_field_rejected(self):
        # Closed taxonomy: extras are schema violations, not extensions.
        with pytest.raises(LedgerSchemaError, match="unknown fields"):
            validate_event(_ev("epoch", surprise=1))

    def test_wrong_type_rejected(self):
        with pytest.raises(LedgerSchemaError):
            validate_event(_ev("epoch", gen_s="fast"))

    def test_bool_is_not_an_int(self):
        with pytest.raises(LedgerSchemaError):
            validate_event(_ev("epoch", epoch=True))

    def test_enum_values_enforced(self):
        with pytest.raises(LedgerSchemaError):
            validate_event(_ev("dispatch", chosen="gpu"))
        with pytest.raises(LedgerSchemaError):
            validate_event(_ev("run_end", status="meh"))

    def test_envelope_enforced(self):
        ev = _ev("checkpoint")
        del ev["run"]
        with pytest.raises(LedgerSchemaError):
            validate_event(ev)
        with pytest.raises(LedgerSchemaError):
            validate_event(_ev("checkpoint", t=-1.0))

    def test_nullable_array_prediction(self):
        # Below the min-events floor the array cost is never computed.
        validate_event(
            _ev(
                "dispatch", predicted_array_us=None, chosen="dict",
                reason="min_events",
            )
        )

    def test_json_schema_document(self):
        doc = as_json_schema()
        assert doc["$schema"].startswith("http")
        branches = {
            b["properties"]["e"]["const"] for b in doc["oneOf"]
        }
        assert branches == set(EVENT_TYPES)


class TestRunLedger:
    def test_events_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.jsonl", run_id="abc")
        ledger.emit("checkpoint", epoch=0, wall_s=0.01)
        ledger.emit("checkpoint", epoch=1, wall_s=0.02)
        ledger.close()
        evs = read_events(tmp_path / "run.jsonl")
        assert [e["epoch"] for e in evs] == [0, 1]
        assert all(e["run"] == "abc" for e in evs)
        assert evs[0]["t"] <= evs[1]["t"]  # monotonic within a ledger

    def test_buffering_defers_the_write(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = RunLedger(path, flush_every=100)
        ledger.emit("checkpoint", epoch=0, wall_s=0.0)
        assert not path.exists()  # still buffered
        ledger.flush()
        assert len(read_events(path)) == 1

    def test_flush_threshold(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = RunLedger(path, flush_every=3)
        for i in range(3):
            ledger.emit("checkpoint", epoch=i, wall_s=0.0)
        assert len(read_events(path)) == 3  # hit the threshold

    def test_numpy_scalars_fold_to_plain_json(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.jsonl", validate=True)
        ledger.emit(
            "checkpoint",
            epoch=np.int64(2),
            wall_s=np.float32(0.5),
        )
        ledger.close()
        ev = read_events(tmp_path / "run.jsonl")[0]
        assert ev["epoch"] == 2 and isinstance(ev["epoch"], int)

    def test_validate_mode_raises_on_bad_event(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.jsonl", validate=True)
        with pytest.raises(LedgerSchemaError):
            ledger.emit("checkpoint", epoch=0)  # wall_s missing

    def test_summary_has_digest_and_count(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.jsonl", run_id="abc")
        ledger.emit("checkpoint", epoch=0, wall_s=0.0)
        s = ledger.summary()
        assert s["schema_version"] == LEDGER_SCHEMA_VERSION
        assert s["run_id"] == "abc"
        assert s["events"] == 1
        assert s["digest"] == file_digest(tmp_path / "run.jsonl")
        assert s["digest"] is not None

    def test_open_run_ledger_names_file_by_run_id(self, tmp_path):
        ledger = open_run_ledger(tmp_path, run_id="deadbeef")
        assert ledger.path.name == "run-deadbeef.jsonl"

    def test_derive_run_id_is_content_addressed(self):
        assert derive_run_id("a", "b") == derive_run_id("a", "b")
        assert derive_run_id("a", "b") != derive_run_id("ab")
        assert len(derive_run_id("x")) == 16
        # Entropy mode: distinct across calls.
        assert derive_run_id() != derive_run_id()


class TestNullLedger:
    def test_null_ledger_records_nothing(self, tmp_path):
        assert NULL_LEDGER.enabled is False
        NULL_LEDGER.emit("dispatch", anything="goes")
        NULL_LEDGER.flush()
        NULL_LEDGER.close()
        assert NULL_LEDGER.summary() is None
        assert list(tmp_path.iterdir()) == []

    def test_null_ledger_is_a_context_manager(self):
        with NULL_LEDGER as led:
            assert led is NULL_LEDGER


class TestShards:
    def test_merge_is_index_ordered_and_deletes_shards(self, tmp_path):
        # Write shards out of order; the merge must come back sorted by
        # job index (the zero-padded filename), not creation order.
        for index in (2, 0, 1):
            shard = RunLedger(
                shard_path(tmp_path, index, "ab" * 32),
                run_id=("ab" * 32)[:16],
            )
            shard.emit(
                "sweep_job", index=index, status="completed",
                key="ab" * 32, driver="t",
            )
            shard.close()
        parent = RunLedger(tmp_path / "run-parent.jsonl", run_id="p")
        merged = merge_shards(tmp_path, parent)
        parent.close()
        assert merged == 3
        evs = read_events(parent.path)
        assert [e["index"] for e in evs] == [0, 1, 2]
        assert not list(tmp_path.glob("shard-*.jsonl"))

    def test_shard_events_keep_their_own_run_id(self, tmp_path):
        shard = RunLedger(shard_path(tmp_path, 0, "cd" * 32), run_id="job0")
        shard.emit(
            "sweep_job", index=0, status="started", key="cd" * 32,
            driver="t",
        )
        shard.close()
        parent = RunLedger(tmp_path / "run-p.jsonl", run_id="parent")
        merge_shards(tmp_path, parent)
        parent.close()
        assert read_events(parent.path)[0]["run"] == "job0"


class TestSweepJobEvents:
    """Pin the three core sweep_job shapes end to end.

    The crash-safety audit reads these events back: every shape must
    carry the executing ``pid`` (the failed shape used to omit it) and
    the 1-based lease ``attempt``.
    """

    def _emit(self, tmp_path, **fields):
        ledger = RunLedger(tmp_path / "run.jsonl", validate=True)
        ledger.emit("sweep_job", **fields)
        ledger.close()
        return read_events(tmp_path / "run.jsonl")[0]

    def test_started_shape(self, tmp_path):
        ev = self._emit(
            tmp_path, index=0, status="started", key="ab" * 32,
            driver="fig14", pid=4242, attempt=1,
        )
        assert ev["pid"] == 4242
        assert ev["attempt"] == 1

    def test_completed_shape(self, tmp_path):
        ev = self._emit(
            tmp_path, index=0, status="completed", key="ab" * 32,
            driver="fig14", wall_s=0.5, pid=4242, attempt=2,
        )
        assert ev["pid"] == 4242
        assert ev["attempt"] == 2

    def test_failed_shape_carries_pid(self, tmp_path):
        # Regression: the failed shape omitted the pid that started and
        # completed events carried, breaking per-worker forensics.
        ev = self._emit(
            tmp_path, index=3, status="failed", key="ab" * 32,
            driver="fig14", wall_s=0.1, error="ValueError('x')",
            pid=4242, attempt=1,
        )
        assert ev["pid"] == 4242
        assert ev["attempt"] == 1
        assert ev["error"] == "ValueError('x')"

    def test_requeued_and_quarantined_statuses_validate(self):
        validate_event(_ev(
            "sweep_job", status="requeued", pid=1, attempt=2,
            error="worker died (exitcode=-9)",
        ))
        validate_event(_ev(
            "sweep_job", status="quarantined", pid=1, attempt=3,
            error="worker died (exitcode=-9)",
        ))

    def test_unknown_status_rejected(self):
        with pytest.raises(LedgerSchemaError, match="status"):
            validate_event(_ev("sweep_job", status="paused"))


class TestReport:
    def _write(self, tmp_path, events, name="run-x.jsonl"):
        path = tmp_path / name
        with open(path, "w") as fh:
            for ev in events:
                fh.write(json.dumps(ev) + "\n")
        return path

    def test_aggregate_phases_and_runs(self, tmp_path):
        self._write(tmp_path, [
            _ev("run_start"),
            _ev("epoch"),
            _ev("epoch", epoch=1, gen_s=0.3),
            _ev("checkpoint"),
            _ev("run_end", time_ns=2e6),
        ])
        agg = aggregate([tmp_path])
        assert agg["events"] == 5
        assert agg["runs"] == {"started": 1, "ok": 1, "failed": 0}
        assert agg["phases"]["gen"]["seconds"] == pytest.approx(0.4)
        assert agg["phases"]["gen"]["epochs"] == 2
        assert agg["checkpoints"]["count"] == 1
        assert agg["sim_time_ns"] == pytest.approx(2e6)

    def test_misprediction_accounting(self, tmp_path):
        self._write(tmp_path, [
            # chosen array, measured 95 < alt py 120: good call
            _ev("dispatch"),
            # chosen array, measured 200 > alt py 120: mispredicted
            _ev("dispatch", measured_us=200.0),
            # min-events floor: no array prediction, not comparable
            _ev(
                "dispatch", chosen="dict", predicted_array_us=None,
                reason="min_events", measured_us=50.0,
            ),
        ])
        agg = aggregate([tmp_path])
        d = agg["dispatch"]
        assert d["total"] == 3
        assert d["comparable"] == 2
        assert d["mispredictions"] == 1
        assert d["misprediction_rate"] == pytest.approx(0.5)
        l1 = d["by_level"]["l1"]
        assert l1["chosen"] == {"array": 2, "dict": 1, "batched": 0}
        # rel error of chosen path's own prediction, comparable only:
        # |95-90|/95 and |200-90|/200 (dict row has no own prediction
        # for min_events? predicted_py_us present: |50-120|/50 too).
        assert l1["mean_rel_error"] > 0

    def test_sweep_requeue_and_quarantine_aggregate(self, tmp_path):
        self._write(tmp_path, [
            _ev("sweep_job", status="started", pid=1, attempt=1),
            _ev(
                "sweep_job", status="requeued", pid=1, attempt=2,
                error="worker died (exitcode=-9)",
            ),
            _ev("sweep_job", status="started", pid=1, attempt=2),
            _ev("sweep_job", status="completed", pid=2, attempt=2),
            _ev(
                "sweep_job", index=1, status="quarantined", pid=1,
                attempt=3, error="worker died (exitcode=-9)",
            ),
        ])
        agg = aggregate([tmp_path])
        sweep = agg["sweep"]
        assert sweep["completed"] == 1
        assert sweep["requeued"] == 1
        assert sweep["quarantined"] == 1
        rows = [r for r in agg["timeline"] if r["event"] == "sweep_job"]
        descs = [r["description"] for r in rows]
        assert any("requeued" in d for d in descs)
        assert any(
            "quarantined" in d and "attempt 3" in d for d in descs
        )
        text = format_report(agg)
        assert "1 requeued" in text
        assert "1 quarantined" in text

    def test_retry_and_degradation_timeline(self, tmp_path):
        self._write(tmp_path, [
            _ev("retry"),
            _ev("degradation"),
            _ev("run_end", status="failed", error="boom", wall_s=1.0),
        ])
        agg = aggregate([tmp_path])
        assert agg["retries"] == 1
        assert agg["degradations"] == 1
        assert agg["runs"]["failed"] == 1
        assert [r["event"] for r in agg["timeline"]] == [
            "retry", "degradation", "run_end",
        ]

    def test_format_report_renders(self, tmp_path):
        self._write(tmp_path, [
            _ev("run_start"), _ev("epoch"), _ev("dispatch"),
            _ev("run_end"),
        ])
        text = format_report(aggregate([tmp_path]))
        assert "phase hotspots" in text
        assert "replay dispatch audit" in text
        assert "l1" in text

    def test_validate_ledgers_reports_context(self, tmp_path):
        path = self._write(tmp_path, [_ev("epoch"), {"e": "epoch"}])
        with pytest.raises(LedgerSchemaError, match=f"{path}:2"):
            validate_ledgers([tmp_path])

    def test_validate_require_dispatch(self, tmp_path):
        self._write(tmp_path, [_ev("run_start")])
        info = validate_ledgers([tmp_path])
        assert info["events"] == 1
        with pytest.raises(ValueError, match="dispatch"):
            validate_ledgers([tmp_path], require_dispatch=True)


def test_peak_rss_is_positive_here():
    rss = peak_rss_bytes()
    assert rss is not None and rss > 1024 * 1024  # >1MB for a python proc
