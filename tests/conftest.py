"""Shared fixtures: small deterministic matrices and systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import mini_config, scaled_config
from repro.core.accelerator import SpadeSystem
from repro.sparse.coo import COOMatrix
from repro.sparse.generators import banded, rmat_graph, uniform_random


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_matrix() -> COOMatrix:
    """The 4x4 example matrix of Appendix A, Figure 15."""
    dense = np.array(
        [
            [0.0, 1.0, 2.0, 0.0],
            [0.0, 0.0, 0.0, 3.0],
            [0.0, 4.0, 0.0, 5.0],
            [7.0, 0.0, 6.0, 0.0],
        ],
        dtype=np.float32,
    )
    return COOMatrix.from_dense(dense)


@pytest.fixture(scope="session")
def small_graph() -> COOMatrix:
    """A power-law graph small enough for full simulation in tests."""
    return rmat_graph(scale=7, edge_factor=8, seed=99)


@pytest.fixture(scope="session")
def banded_matrix() -> COOMatrix:
    return banded(num_rows=300, bandwidth=6, seed=3)


@pytest.fixture(scope="session")
def random_rect() -> COOMatrix:
    """A rectangular random matrix (rows != cols)."""
    return uniform_random(num_rows=96, num_cols=160, nnz=700, seed=21)


@pytest.fixture()
def small_system() -> SpadeSystem:
    return SpadeSystem(scaled_config(4, cache_shrink=8))


@pytest.fixture()
def mini_system() -> SpadeSystem:
    return SpadeSystem(mini_config(4))


@pytest.fixture(scope="session")
def dense_b_factory():
    def make(num_rows: int, k: int, seed: int = 7) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.random((num_rows, k), dtype=np.float32)

    return make
